"""Domain lexicons.

The paper's Domain Specific Score (DSS, Eq. 2) relies on a pre-stored
dictionary of domain lexicons (its Table 1 shows medical, emotion and GloVe
clusters).  This module ships a built-in collection in the same spirit:
several topical domains, each a high-level label indexing a flat list of
lexicon words.  The synthetic corpora draw their content words from the same
lexicons, so domain membership is well-defined end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tokenizer.word_tokenizer import split_words


@dataclass(frozen=True)
class DomainLexicon:
    """A named domain with its lexicon word set."""

    name: str
    words: frozenset = field(default_factory=frozenset)

    @staticmethod
    def from_words(name: str, words: Iterable[str]) -> "DomainLexicon":
        """Build a lexicon, lower-casing and deduplicating the words."""
        return DomainLexicon(name=name, words=frozenset(w.lower() for w in words))

    def __len__(self) -> int:
        return len(self.words)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self.words

    def overlap_count(self, text: str) -> int:
        """Number of tokens of ``text`` (with multiplicity) found in this lexicon."""
        return sum(1 for token in split_words(text) if token in self.words)

    def overlap_ratio(self, text: str) -> float:
        """Overlap count divided by the number of tokens in ``text``."""
        tokens = split_words(text)
        if not tokens:
            return 0.0
        return self.overlap_count(text) / len(tokens)


class LexiconCollection:
    """The collection ``L = {l_1, ..., l_m}`` of domain lexicons."""

    def __init__(self, lexicons: Sequence[DomainLexicon]) -> None:
        if not lexicons:
            raise ValueError("LexiconCollection requires at least one lexicon")
        names = [lexicon.name for lexicon in lexicons]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lexicon names: {names}")
        self._lexicons: Dict[str, DomainLexicon] = {lex.name: lex for lex in lexicons}

    def __len__(self) -> int:
        return len(self._lexicons)

    def __iter__(self):
        return iter(self._lexicons.values())

    def __contains__(self, name: str) -> bool:
        return name in self._lexicons

    @property
    def names(self) -> List[str]:
        """Domain names in insertion order."""
        return list(self._lexicons.keys())

    def get(self, name: str) -> DomainLexicon:
        """The lexicon named ``name`` (raises ``KeyError`` if unknown)."""
        if name not in self._lexicons:
            raise KeyError(f"unknown domain {name!r}; known: {self.names}")
        return self._lexicons[name]

    def subset(self, names: Sequence[str]) -> "LexiconCollection":
        """A new collection restricted to ``names`` (order preserved)."""
        return LexiconCollection([self.get(name) for name in names])

    def overlap_counts(self, text: str) -> Dict[str, int]:
        """``|T ∩ l_i|`` for every domain ``l_i``."""
        return self.overlap_counts_from_tokens(split_words(text))

    def overlap_counts_from_tokens(self, tokens: Sequence[str]) -> Dict[str, int]:
        """``|T ∩ l_i|`` per domain for an already-tokenized text.

        Splitting once and counting against every lexicon avoids the m-fold
        re-tokenization of calling ``lexicon.overlap_count(text)`` per domain.
        """
        return {
            name: sum(1 for token in tokens if token in lexicon.words)
            for name, lexicon in self._lexicons.items()
        }

    def dominant_domain(self, text: str) -> Optional[str]:
        """``argmax_i |T ∩ l_i|`` (Eq. 3); ``None`` when no domain overlaps."""
        return self.dominant_from_counts(self.overlap_counts(text))

    @staticmethod
    def dominant_from_counts(counts: Dict[str, int]) -> Optional[str]:
        """The argmax domain of precomputed overlap counts (ties: first wins)."""
        best_name, best_count = None, 0
        for name, count in counts.items():
            if count > best_count:
                best_name, best_count = name, count
        return best_name

    def vocabulary(self) -> List[str]:
        """All lexicon words across all domains (sorted, deduplicated)."""
        words = set()
        for lexicon in self._lexicons.values():
            words.update(lexicon.words)
        return sorted(words)


# --------------------------------------------------------------------------- #
# Built-in lexicons (Table 1 analogue, extended with extra topical domains so
# the six synthetic corpora have distinct domain structure).
# --------------------------------------------------------------------------- #

_MEDICAL_ADMIN = """
dose vial inhale inject ml pills ingredient tablet capsule syringe prescription
refill pharmacy dosage milligram injection topical oral intravenous applicator
bandage gauze swab sterile dispenser expiry inhaler nebulizer suppository
""".split()

_MEDICAL_ANATOMY = """
pelvis arm sinus breast chest lymph tonsil femur spine cranium knee ankle wrist
shoulder elbow liver kidney lung heart artery vein nerve muscle tendon ligament
retina cornea eardrum abdomen thorax vertebra rib clavicle scapula
""".split()

_MEDICAL_DRUG = """
acova actonel cartia emgel ibuprofen acetaminophen amoxicillin insulin statin
metformin lisinopril omeprazole albuterol prednisone warfarin antibiotic
antihistamine analgesic antiviral sedative vaccine penicillin aspirin codeine
""".split()

_MEDICAL_SYMPTOM = """
fever cough headache nausea fatigue dizziness rash swelling inflammation pain
migraine cramp congestion sore itching numbness tremor palpitation insomnia
vomiting diarrhea chills sweating wheezing shortness breathlessness anxiety
""".split()

_EMOTION_FEAR = """
bunker cartridge cautionary chasm cleave terrified afraid panic dread horror
nightmare startled anxious scared frightened trembling nervous worried spooked
alarm threat danger ominous eerie menacing petrified phobia
""".split()

_EMOTION_SURPRISE = """
amazingly hilarious lucky merriment astonished unexpected shocking incredible
unbelievable stunned speechless marvel wonder gasp startling sudden remarkable
extraordinary jawdropping serendipity windfall miracle dazzled awestruck
""".split()

_EMOTION_TRUST = """
advocate alliance canons cohesion reliable faithful loyal honest dependable
sincere devoted trustworthy confide assurance integrity bond commitment promise
supportive steadfast genuine transparent credible reassure
""".split()

_EMOTION_JOY = """
delighted cheerful gleeful joyful ecstatic elated thrilled blissful content
grateful radiant jubilant festive celebrate laughter smiling sunshine uplifting
heartwarming wonderful proud hopeful excited overjoyed
""".split()

_EMOTION_SADNESS = """
grief sorrow mourning heartbroken lonely despair gloomy tearful weeping
melancholy downcast miserable regret loss devastated hopeless crying homesick
disappointed hurt abandoned empty aching grieving
""".split()

_GLOVE_TW26 = """
extreme potential activity impact movement dynamic trending viral engagement
hashtag follower retweet influencer momentum buzz reach spike surge
""".split()

_GLOVE_CC41 = """
symptomatic thrombosis fibrillation embolism ischemia stenosis lesion edema
carcinoma neuropathy sepsis hypertension arrhythmia biopsy prognosis pathology
""".split()

_GLOVE_TW75 = """
nyquil benadryl midol pepto ritalin tylenol advil claritin zyrtec mucinex
dayquil sudafed robitussin excedrin motrin aleve
""".split()

_TECH = """
compiler algorithm database server network latency bandwidth processor cache
kernel thread container deployment api framework debugging encryption firmware
gpu throughput protocol compiler runtime microservice quantization embedded
""".split()

_FINANCE = """
portfolio dividend equity liability asset interest mortgage inflation budget
invoice revenue expense audit ledger liquidity hedge arbitrage bond yield
credit debit savings retirement annuity premium
""".split()

_COOKING = """
saute simmer marinade whisk julienne braise roast garnish seasoning broth
casserole dough batter yeast caramelize zest skillet oven spatula recipe
ingredient teaspoon tablespoon garlic basil oregano cumin
""".split()

_TRAVEL = """
itinerary passport boarding layover hostel visa customs luggage departure
arrival excursion souvenir backpacking roundtrip terminal reservation airfare
destination sightseeing museum cathedral canyon coastline
""".split()

_SAFETY = """
respectful considerate apologize boundaries consent harmful offensive polite
deescalate empathy inclusive discrimination harassment wellbeing responsible
caution guideline appropriate kindness civility dignity
""".split()


_BUILTIN_DEFINITIONS: Tuple[Tuple[str, List[str]], ...] = (
    ("medical_admin", _MEDICAL_ADMIN),
    ("medical_anatomy", _MEDICAL_ANATOMY),
    ("medical_drug", _MEDICAL_DRUG),
    ("medical_symptom", _MEDICAL_SYMPTOM),
    ("emotion_fear", _EMOTION_FEAR),
    ("emotion_surprise", _EMOTION_SURPRISE),
    ("emotion_trust", _EMOTION_TRUST),
    ("emotion_joy", _EMOTION_JOY),
    ("emotion_sadness", _EMOTION_SADNESS),
    ("glove_tw26", _GLOVE_TW26),
    ("glove_cc41", _GLOVE_CC41),
    ("glove_tw75", _GLOVE_TW75),
    ("tech", _TECH),
    ("finance", _FINANCE),
    ("cooking", _COOKING),
    ("travel", _TRAVEL),
    ("safety", _SAFETY),
)


def builtin_lexicons() -> LexiconCollection:
    """The full built-in lexicon collection (17 domains)."""
    return LexiconCollection(
        [DomainLexicon.from_words(name, words) for name, words in _BUILTIN_DEFINITIONS]
    )


def builtin_domain_names() -> List[str]:
    """Names of all built-in domains."""
    return [name for name, _ in _BUILTIN_DEFINITIONS]
