"""Dialogue-set data structures.

The paper's atomic unit of data selection is a *dialogue set*: one pair of
user question and model response from the user–LLM interaction.  The
structures here also carry the gold (user-preferred) response used to
simulate annotation, the ground-truth domain of the synthetic generator
(never consulted by the selection policy — it is self-supervised — but useful
for analysis and tests), and arbitrary metadata.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.tokenizer.word_tokenizer import split_words


@dataclass
class DialogueSet:
    """A question / response pair plus annotation and provenance."""

    question: str
    response: str
    gold_response: Optional[str] = None
    domain: Optional[str] = None
    source: Optional[str] = None
    synthetic: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def text(self) -> str:
        """The full dialogue text (question followed by response)."""
        return f"{self.question} {self.response}".strip()

    def num_tokens(self) -> int:
        """Word-token count of the full dialogue text."""
        return len(split_words(self.text()))

    def annotated(self, preferred_response: str) -> "DialogueSet":
        """A copy whose response is replaced by the user-preferred one.

        Mirrors the paper's annotation step: "If users provided an alternative
        response that is preferred, the dialog set will be updated using the
        user provided content before being placed into the buffer."
        """
        return replace(self, response=preferred_response, gold_response=preferred_response)

    def with_response(self, response: str) -> "DialogueSet":
        """A copy with a different model response (gold label untouched)."""
        return replace(self, response=response)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON serializable)."""
        return {
            "question": self.question,
            "response": self.response,
            "gold_response": self.gold_response,
            "domain": self.domain,
            "source": self.source,
            "synthetic": self.synthetic,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DialogueSet":
        """Inverse of :meth:`to_dict`."""
        return cls(
            question=str(data["question"]),
            response=str(data["response"]),
            gold_response=data.get("gold_response"),  # type: ignore[arg-type]
            domain=data.get("domain"),  # type: ignore[arg-type]
            source=data.get("source"),  # type: ignore[arg-type]
            synthetic=bool(data.get("synthetic", False)),
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )


class DialogueCorpus:
    """An ordered collection of dialogue sets with split and persistence helpers."""

    def __init__(self, dialogues: Sequence[DialogueSet], name: str = "corpus") -> None:
        self._dialogues: List[DialogueSet] = list(dialogues)
        self.name = name

    # -- container protocol ------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._dialogues)

    def __iter__(self) -> Iterator[DialogueSet]:
        return iter(self._dialogues)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return DialogueCorpus(self._dialogues[index], name=self.name)
        return self._dialogues[index]

    def dialogues(self) -> List[DialogueSet]:
        """The underlying list (copy)."""
        return list(self._dialogues)

    # -- analysis ----------------------------------------------------------- #
    def domains(self) -> List[str]:
        """Distinct ground-truth domains present, in first-seen order."""
        seen: List[str] = []
        for dialogue in self._dialogues:
            if dialogue.domain is not None and dialogue.domain not in seen:
                seen.append(dialogue.domain)
        return seen

    def domain_histogram(self) -> Dict[str, int]:
        """Count of dialogue sets per ground-truth domain."""
        histogram: Dict[str, int] = {}
        for dialogue in self._dialogues:
            key = dialogue.domain or "<unknown>"
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def questions(self) -> List[str]:
        """All question texts."""
        return [dialogue.question for dialogue in self._dialogues]

    def gold_responses(self) -> List[str]:
        """Gold responses (falling back to the recorded response when missing)."""
        return [
            dialogue.gold_response if dialogue.gold_response is not None else dialogue.response
            for dialogue in self._dialogues
        ]

    def all_text(self) -> List[str]:
        """Every question and response string (used for vocabulary building)."""
        texts: List[str] = []
        for dialogue in self._dialogues:
            texts.append(dialogue.question)
            texts.append(dialogue.response)
            if dialogue.gold_response:
                texts.append(dialogue.gold_response)
        return texts

    # -- manipulation -------------------------------------------------------- #
    def split(self, first_fraction: float, rng=None) -> tuple["DialogueCorpus", "DialogueCorpus"]:
        """Random split into (first, second) with ``first_fraction`` in the first.

        The paper streams a random 10% of each dataset and evaluates on the
        remaining 90%; this is the helper that produces that split.
        """
        from repro.utils.rng import as_generator

        if not 0.0 < first_fraction < 1.0:
            raise ValueError(f"first_fraction must be in (0, 1), got {first_fraction}")
        generator = as_generator(rng)
        indices = generator.permutation(len(self._dialogues))
        cut = max(1, int(round(first_fraction * len(self._dialogues))))
        first = [self._dialogues[i] for i in indices[:cut]]
        second = [self._dialogues[i] for i in indices[cut:]]
        return (
            DialogueCorpus(first, name=f"{self.name}[stream]"),
            DialogueCorpus(second, name=f"{self.name}[eval]"),
        )

    def filter_by_domain(self, domain: str) -> "DialogueCorpus":
        """Only the dialogue sets whose ground-truth domain equals ``domain``."""
        return DialogueCorpus(
            [d for d in self._dialogues if d.domain == domain], name=f"{self.name}[{domain}]"
        )

    def extend(self, dialogues: Iterable[DialogueSet]) -> None:
        """Append more dialogue sets in place."""
        self._dialogues.extend(dialogues)

    # -- persistence --------------------------------------------------------- #
    def save_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the corpus as JSON-lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for dialogue in self._dialogues:
                handle.write(json.dumps(dialogue.to_dict()) + "\n")
        return path

    @classmethod
    def load_jsonl(cls, path: Union[str, Path], name: Optional[str] = None) -> "DialogueCorpus":
        """Load a corpus written by :meth:`save_jsonl`."""
        path = Path(path)
        dialogues = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    dialogues.append(DialogueSet.from_dict(json.loads(line)))
        return cls(dialogues, name=name or path.stem)
