"""User persona model.

On-device personalization means the model must learn *this user's* preferred
way of being answered.  The synthetic corpora encode that with a
:class:`UserPersona`: a deterministic response style (signature opening and
closing phrases, a per-domain style phrase, and keyword echoing) that is used
to produce the gold (user-preferred) responses.  The pre-trained, generic
model knows nothing about the persona, so the measurable personalization gap
is exactly the gap the paper's framework is designed to close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data.lexicons import LexiconCollection
from repro.tokenizer.word_tokenizer import split_words
from repro.utils.rng import as_generator

_OPENINGS = (
    "well dear friend",
    "right then my friend",
    "listen closely friend",
    "alright let us see",
    "good question indeed",
    "ah yes of course",
    "thanks for asking me",
    "sure thing my dear",
    "happy to help here",
    "let me think aloud",
)

_CLOSINGS = (
    "hope that helps you today",
    "take gentle care of yourself",
    "wishing you a calm evening",
    "always here to help you",
    "let me know how it goes",
    "stay safe and be well",
    "talk again whenever you like",
    "sending you my best wishes",
    "glad we could sort this",
    "come back anytime for more",
)

_DOMAIN_STYLE_PHRASES = (
    "remember to keep steady notes about",
    "my honest advice is to focus on",
    "from experience the key point is",
    "please be careful and mindful about",
    "the simplest plan is to start with",
    "it usually works best to review",
    "a sensible first step is checking",
    "the thing that matters most is",
    "people often overlook the detail of",
    "try writing down a list covering",
)

_GENERIC_FALLBACKS = (
    "that sounds lovely thanks for sharing",
    "glad to hear from you again today",
    "interesting thought let us keep chatting",
)

_FILLER_ACKS = (
    "nice chatting with you",
    "sure sounds good",
    "okay talk soon",
    "haha yes indeed",
    "alright no worries",
)

_CLARIFYING_TEMPLATES = (
    "could you tell me a bit more about {keyword} first",
    "hmm what exactly do you mean about {keyword}",
    "can you give me an example about {keyword}",
)


@dataclass
class UserPersona:
    """A deterministic user response style used to create gold annotations.

    The style has a user-wide part (opening and closing phrases) and a
    domain-dependent part: for every domain the user has a preferred style
    phrase *and* a small "go-to vocabulary" of domain words they want to see
    in answers (e.g. a user who always wants dosage/pharmacist mentioned in
    medication answers).  The domain-dependent part is what makes buffer
    domain coverage matter: a model fine-tuned without any examples of a
    domain cannot know this user's go-to vocabulary for it.
    """

    opening: str
    closing: str
    domain_phrases: Dict[str, str] = field(default_factory=dict)
    domain_vocabulary: Dict[str, List[str]] = field(default_factory=dict)
    echo_keywords: int = 2
    name: str = "user"

    @classmethod
    def sample(
        cls,
        domains: Sequence[str],
        rng=None,
        lexicons: Optional[LexiconCollection] = None,
        vocabulary_per_domain: int = 6,
        echo_keywords: int = 2,
        name: str = "user",
    ) -> "UserPersona":
        """Create a persona with a random but reproducible style.

        When ``lexicons`` is given, the per-domain go-to vocabulary is drawn
        from each domain's own lexicon; otherwise it is left empty.
        """
        generator = as_generator(rng)
        opening = _OPENINGS[int(generator.integers(len(_OPENINGS)))]
        closing = _CLOSINGS[int(generator.integers(len(_CLOSINGS)))]
        # Assign style phrases without replacement (cycling if there are more
        # domains than phrases) so that distinct domains get distinct phrases
        # and buffer domain coverage translates into distinct learnable content.
        phrase_order = generator.permutation(len(_DOMAIN_STYLE_PHRASES))
        phrases = {
            domain: _DOMAIN_STYLE_PHRASES[int(phrase_order[index % len(_DOMAIN_STYLE_PHRASES)])]
            for index, domain in enumerate(domains)
        }
        vocabulary: Dict[str, List[str]] = {}
        if lexicons is not None:
            for domain in domains:
                if domain not in lexicons:
                    continue
                words = sorted(lexicons.get(domain).words)
                count = min(vocabulary_per_domain, len(words))
                picks = generator.choice(len(words), size=count, replace=False)
                vocabulary[domain] = [words[int(i)] for i in picks]
        return cls(
            opening=opening,
            closing=closing,
            domain_phrases=phrases,
            domain_vocabulary=vocabulary,
            echo_keywords=echo_keywords,
            name=name,
        )

    # ------------------------------------------------------------------ #
    def keywords_from_question(
        self, question: str, lexicons: Optional[LexiconCollection] = None
    ) -> List[str]:
        """Content keywords of a question (lexicon words first, then longest)."""
        tokens = split_words(question)
        if lexicons is not None:
            lexicon_words = [
                token
                for token in tokens
                if any(token in lexicon for lexicon in lexicons)
            ]
        else:
            lexicon_words = []
        remaining = [token for token in tokens if token not in lexicon_words and len(token) > 4]
        ordered = lexicon_words + sorted(remaining, key=len, reverse=True)
        deduplicated: List[str] = []
        for token in ordered:
            if token not in deduplicated:
                deduplicated.append(token)
        return deduplicated[: self.echo_keywords]

    def _vocabulary_subset(
        self, domain: str, keywords: Sequence[str], count: Optional[int] = None
    ) -> List[str]:
        """The go-to vocabulary the user expects in answers for ``domain``.

        By default the full per-domain vocabulary is returned (the user always
        wants these words covered); passing ``count`` selects a deterministic,
        keyword-keyed slice instead, which makes within-domain diversity matter
        more (used in ablations).
        """
        vocabulary = self.domain_vocabulary.get(domain, [])
        if not vocabulary:
            return []
        if count is None or count >= len(vocabulary):
            return list(vocabulary)
        anchor = sum(len(keyword) for keyword in keywords) + len(keywords)
        start = anchor % len(vocabulary)
        return [vocabulary[(start + offset) % len(vocabulary)] for offset in range(count)]

    def preferred_response(
        self,
        question: str,
        domain: Optional[str],
        lexicons: Optional[LexiconCollection] = None,
        vocabulary_count: Optional[int] = None,
    ) -> str:
        """The gold response this user would prefer for a substantive question.

        Structure: opening + per-domain style phrase + echoed question
        keywords + a slice of the user's per-domain go-to vocabulary +
        closing.  ``vocabulary_count`` controls how much of the go-to
        vocabulary the answer covers: questions that carry more information
        (more domain keywords) elicit richer preferred answers, which is what
        makes *informative* dialogue sets more valuable to select.  The
        domain-dependent middle carries most of the tokens, so ROUGE-1 against
        these references rewards fine-tuning data that covers the domain.
        Unknown/None domains get a generic fallback phrase so off-domain
        questions still have a well-defined gold response.
        """
        keywords = self.keywords_from_question(question, lexicons=lexicons)
        if domain is not None and domain in self.domain_phrases:
            style = self.domain_phrases[domain]
            vocabulary = self._vocabulary_subset(domain, keywords, count=vocabulary_count)
        else:
            style = _GENERIC_FALLBACKS[len(question) % len(_GENERIC_FALLBACKS)]
            vocabulary = []
        middle_tokens = [style] + keywords + list(vocabulary)
        middle = " ".join(token for token in middle_tokens if token).strip()
        return f"{self.opening} {middle} {self.closing}"

    def clarifying_response(self, question: str, lexicons: Optional[LexiconCollection] = None) -> str:
        """The user's preferred reply to a vague ("thin") question.

        Realistic users cannot state a substantive preference for a question
        that carries little information; they prefer a short clarifying
        question instead.  Such annotations are far less useful for
        personalization — which is why selecting thin dialogue sets wastes
        buffer space.
        """
        keywords = self.keywords_from_question(question, lexicons=lexicons)
        keyword = keywords[0] if keywords else "that"
        template = _CLARIFYING_TEMPLATES[len(question) % len(_CLARIFYING_TEMPLATES)]
        return template.format(keyword=keyword)

    def filler_response(self, question: str) -> str:
        """The user's preferred reply to pure small talk: a short acknowledgement."""
        return _FILLER_ACKS[len(question) % len(_FILLER_ACKS)]

    def signature_tokens(self) -> List[str]:
        """All persona-specific tokens (used in tests to verify learnability)."""
        parts = [self.opening, self.closing]
        parts.extend(self.domain_phrases.values())
        for words in self.domain_vocabulary.values():
            parts.extend(words)
        return sorted(set(split_words(" ".join(parts))))

    def domain_signature_tokens(self, domain: str) -> List[str]:
        """Tokens specific to one domain's preferred answers (phrase + vocabulary)."""
        parts: List[str] = []
        if domain in self.domain_phrases:
            parts.append(self.domain_phrases[domain])
        parts.extend(self.domain_vocabulary.get(domain, []))
        return sorted(set(split_words(" ".join(parts))))


def generic_model_response(question: str, rng=None) -> str:
    """A bland, persona-free response imitating the pre-trained model's answers.

    This is what the deployed generic LLM would say before any
    personalization; it deliberately shares few tokens with the persona's
    preferred responses.
    """
    generator = as_generator(rng)
    templates = (
        "here is some general information regarding {topic}",
        "there are many possible answers about {topic} depending on context",
        "i can provide a brief overview of {topic} if that is useful",
        "a standard reference would describe {topic} in more detail",
    )
    tokens = [token for token in split_words(question) if len(token) > 4]
    topic = " ".join(tokens[:2]) if tokens else "that"
    template = templates[int(generator.integers(len(templates)))]
    return template.format(topic=topic)
