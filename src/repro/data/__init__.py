"""Data substrate: lexicons, dialogue structures, synthetic corpora, streams."""

from repro.data.dialogue import DialogueCorpus, DialogueSet
from repro.data.lexicons import (
    DomainLexicon,
    LexiconCollection,
    builtin_domain_names,
    builtin_lexicons,
)
from repro.data.persona import UserPersona, generic_model_response
from repro.data.stream import (
    DialogueStream,
    StreamConfig,
    reorder_with_correlation,
    temporal_correlation_index,
)
from repro.data.synthetic import (
    DATASET_NAMES,
    QUALITY_FILLER,
    QUALITY_RICH,
    QUALITY_THIN,
    STRONGLY_CORRELATED,
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
    corpus_persona,
    dataset_preset,
    make_all_corpora,
    make_corpus,
    make_corpus_config,
    make_generator,
    stream_noise_preset,
)

__all__ = [
    "DATASET_NAMES",
    "DialogueCorpus",
    "DialogueSet",
    "DialogueStream",
    "DomainLexicon",
    "LexiconCollection",
    "QUALITY_FILLER",
    "QUALITY_RICH",
    "QUALITY_THIN",
    "STRONGLY_CORRELATED",
    "StreamConfig",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
    "UserPersona",
    "builtin_domain_names",
    "builtin_lexicons",
    "corpus_persona",
    "dataset_preset",
    "generic_model_response",
    "make_all_corpora",
    "make_corpus",
    "make_corpus_config",
    "make_generator",
    "reorder_with_correlation",
    "stream_noise_preset",
    "temporal_correlation_index",
]
