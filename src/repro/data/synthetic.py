"""Synthetic dialogue corpora standing in for the paper's six datasets.

The paper evaluates on ALPACA, DOLLY, OPENORCA (diverse, weak temporal
correlation) and MedDialog, Prosocial-Dialog, Empathetic-Dialog
(domain-specific, strong temporal correlation).  Those datasets cannot be
downloaded in this offline environment, so this module generates synthetic
analogues that preserve the properties the framework actually interacts with:

* a domain mixture drawn from the built-in lexicons, so the Domain Specific
  Score and dominant-domain computations are meaningful;
* a controllable temporal-correlation level for the input stream;
* a fraction of low-information filler chit-chat (the paper's
  "uncontroversial dialogue sets") that a good selection policy should skip;
* a user persona that defines gold (user-preferred) responses, giving the
  fine-tuning a learnable personalization target and ROUGE-1 a reference.

Each generated :class:`~repro.data.dialogue.DialogueSet` carries the question,
the generic model response (what the deployed LLM would have said), the gold
persona response (the annotation a user would provide), and its ground-truth
domain for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dialogue import DialogueCorpus, DialogueSet
from repro.data.lexicons import LexiconCollection, builtin_lexicons
from repro.data.persona import UserPersona, generic_model_response
from repro.utils.config import require_in_unit_interval, require_positive
from repro.utils.rng import as_generator

# --------------------------------------------------------------------------- #
# Question templates.  ``{w1}``/``{w2}``/``{w3}`` are filled with words drawn
# from the dialogue's domain lexicon; the per-corpus flavour adds its own
# phrasing so the six corpora are lexically distinguishable.
# --------------------------------------------------------------------------- #

_QUESTION_TEMPLATES: Dict[str, Tuple[str, ...]] = {
    "instruction": (
        "explain how {w1} relates to {w2} in simple terms",
        "write a short note about {w1} and why {w2} matters",
        "list three practical tips about {w1} {w2} and {w3}",
        "compare {w1} with {w2} and give one example",
        "summarize what someone should know about {w1} before trying {w2}",
    ),
    "conversation": (
        "i keep thinking about {w1} and {w2} what should i do",
        "lately the {w1} has been worrying me especially the {w2}",
        "can we talk about {w1} i noticed some {w2} yesterday",
        "my experience with {w1} and {w3} left me confused about {w2}",
        "someone told me {w1} causes {w2} is that true",
    ),
    "reasoning": (
        "if {w1} increases while {w2} stays fixed what happens to {w3}",
        "why would {w1} lead to {w2} rather than {w3}",
        "given {w1} and {w2} which one better explains {w3}",
        "walk me through the steps from {w1} to {w2}",
        "what evidence links {w1} with {w2} and {w3}",
    ),
}

# Lower-information substantive questions (richness levels 1 and 2): they are
# still evaluable domain content, but they mention fewer domain keywords and
# elicit preferred answers covering less of the user's go-to vocabulary.
_LEVEL1_QUESTION_TEMPLATES = (
    "tell me something useful about {w1} please",
    "what should i generally know about {w1}",
    "how do people usually handle {w1}",
)

_LEVEL2_QUESTION_TEMPLATES = (
    "explain how {w1} relates to {w2} for me",
    "i am weighing {w1} against {w2} what matters",
    "does {w1} usually come together with {w2}",
)

_THIN_QUESTION_TEMPLATES = (
    "any quick thoughts about {w1} i guess",
    "hmm i was wondering about that {w1} thing",
    "so about the {w1} from yesterday you know",
    "not sure if it matters but {w1} came up again",
    "just curious what about {w1} then",
)

_FILLER_QUESTIONS = (
    "hello again how are you doing today",
    "nice weather we are having right now",
    "thanks for the chat earlier it was fun",
    "good morning hope you slept well",
    "just checking in nothing much to ask",
    "ok sounds good talk to you later",
    "haha that was funny anyway",
    "hmm let me think about it for a bit",
)

# Quality tiers of a dialogue set.  Rich sets carry substantive domain content
# and a fully informative user annotation; thin sets are vague questions whose
# preferred response is only a clarifying question; fillers are small talk.
QUALITY_RICH = "rich"
QUALITY_THIN = "thin"
QUALITY_FILLER = "filler"


@dataclass
class SyntheticCorpusConfig:
    """Configuration of one synthetic corpus.

    ``filler_rate`` / ``thin_rate`` control low-information items *inside the
    corpus itself* and default to zero: the dataset analogues contain
    substantive (evaluable) dialogue sets, while small talk and vague turns
    are injected into the *stream* by
    :meth:`SyntheticCorpusGenerator.make_interaction_stream`, mirroring the
    paper's observation that the user–LLM interaction contains
    "uncontroversial dialogue sets" between the informative ones.
    """

    name: str
    size: int = 600
    domain_names: Tuple[str, ...] = ()
    question_flavor: str = "conversation"
    temporal_correlation: float = 0.5
    filler_rate: float = 0.0
    thin_rate: float = 0.0
    duplicate_rate: float = 0.5
    words_per_question: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive("size", self.size)
        require_in_unit_interval("temporal_correlation", self.temporal_correlation)
        require_in_unit_interval("filler_rate", self.filler_rate)
        require_in_unit_interval("thin_rate", self.thin_rate)
        require_in_unit_interval("duplicate_rate", self.duplicate_rate)
        if self.question_flavor not in _QUESTION_TEMPLATES:
            raise ValueError(
                f"unknown question_flavor {self.question_flavor!r}; "
                f"known: {sorted(_QUESTION_TEMPLATES)}"
            )
        if not self.domain_names:
            raise ValueError("domain_names must not be empty")


class SyntheticCorpusGenerator:
    """Generates a :class:`DialogueCorpus` from a :class:`SyntheticCorpusConfig`."""

    def __init__(
        self,
        config: SyntheticCorpusConfig,
        lexicons: Optional[LexiconCollection] = None,
        persona: Optional[UserPersona] = None,
    ) -> None:
        self.config = config
        self.lexicons = lexicons or builtin_lexicons()
        unknown = [name for name in config.domain_names if name not in self.lexicons]
        if unknown:
            raise KeyError(f"unknown domains in config: {unknown}")
        self.domain_lexicons = self.lexicons.subset(list(config.domain_names))
        rng = as_generator(config.seed)
        self._rng = rng
        self.persona = persona or UserPersona.sample(
            list(config.domain_names),
            rng=rng,
            lexicons=self.domain_lexicons,
            name=f"{config.name}-user",
        )

    # ------------------------------------------------------------------ #
    def _sample_plan(self, size: int, rng: np.random.Generator) -> List[Tuple[Optional[str], str, bool]]:
        """Assign ``(domain, quality, duplicate_of_previous)`` to every position.

        Temporal correlation is realised as a sticky Markov chain over
        domains: with probability ``temporal_correlation`` the next dialogue
        keeps the previous domain (and with ``duplicate_rate`` it is a
        near-duplicate of the previous dialogue — the "few rounds of
        uncontroversial dialogue sets" the paper describes).  Fillers and thin
        questions are sprinkled in independently.
        """
        domains = list(self.config.domain_names)
        plan: List[Tuple[Optional[str], str, bool]] = []
        current = domains[int(rng.integers(len(domains)))]
        previous_was_domain = False
        for _ in range(size):
            if rng.random() < self.config.filler_rate:
                plan.append((None, QUALITY_FILLER, False))
                previous_was_domain = False
                continue
            stayed = False
            if plan and previous_was_domain and rng.random() < self.config.temporal_correlation:
                stayed = True  # stay in the current domain
            else:
                current = domains[int(rng.integers(len(domains)))]
            quality = QUALITY_THIN if rng.random() < self.config.thin_rate else QUALITY_RICH
            duplicate = bool(
                stayed and quality == QUALITY_RICH and rng.random() < self.config.duplicate_rate
            )
            plan.append((current, quality, duplicate))
            previous_was_domain = True
        return plan

    def _sample_words(self, domain: str, count: int, rng: np.random.Generator) -> List[str]:
        """Draw ``count`` lexicon words from ``domain`` (with replacement)."""
        lexicon_words = sorted(self.lexicons.get(domain).words)
        return [
            lexicon_words[int(rng.integers(len(lexicon_words)))] for _ in range(count)
        ]

    def _rich_question(
        self, domain: str, picks: Sequence[str], rng: np.random.Generator, level: int = 3
    ) -> str:
        """A substantive question whose richness ``level`` (1-3) sets how many
        distinct domain keywords it carries."""
        if level <= 1:
            templates = _LEVEL1_QUESTION_TEMPLATES
            template = templates[int(rng.integers(len(templates)))]
            return template.format(w1=picks[0])
        if level == 2:
            templates = _LEVEL2_QUESTION_TEMPLATES
            template = templates[int(rng.integers(len(templates)))]
            return template.format(w1=picks[0], w2=picks[1])
        templates = _QUESTION_TEMPLATES[self.config.question_flavor]
        template = templates[int(rng.integers(len(templates)))]
        return template.format(w1=picks[0], w2=picks[1], w3=picks[2])

    def _thin_question(self, domain: str, picks: Sequence[str], rng: np.random.Generator) -> str:
        """A vague question that mentions only one domain word in passing."""
        template = _THIN_QUESTION_TEMPLATES[int(rng.integers(len(_THIN_QUESTION_TEMPLATES)))]
        return template.format(w1=picks[0])

    def _perturb_duplicate(self, picks: List[str], domain: str, rng: np.random.Generator) -> List[str]:
        """Near-duplicate word picks: keep all but (sometimes) one word."""
        perturbed = list(picks)
        if perturbed and rng.random() < 0.5:
            replacement = self._sample_words(domain, 1, rng)[0]
            perturbed[int(rng.integers(len(perturbed)))] = replacement
        return perturbed

    def _gold_response(
        self, question: str, domain: Optional[str], quality: str, level: int = 3
    ) -> str:
        """The user's preferred (annotation) response for a dialogue set."""
        if quality == QUALITY_FILLER or domain is None:
            return self.persona.filler_response(question)
        if quality == QUALITY_THIN:
            return self.persona.clarifying_response(question, lexicons=self.domain_lexicons)
        return self.persona.preferred_response(
            question,
            domain,
            lexicons=self.domain_lexicons,
            vocabulary_count=2 * level,
        )

    def make_filler_dialogue(self, rng: np.random.Generator, index: int = -1) -> DialogueSet:
        """One small-talk dialogue set with the user's (trivial) preferred reply."""
        question = _FILLER_QUESTIONS[int(rng.integers(len(_FILLER_QUESTIONS)))]
        return DialogueSet(
            question=question,
            response=generic_model_response(question, rng=rng),
            gold_response=self.persona.filler_response(question),
            domain=None,
            source=self.config.name,
            metadata={"index": index, "quality": QUALITY_FILLER, "duplicate": False},
        )

    def make_thin_dialogue(
        self, domain: str, rng: np.random.Generator, index: int = -1
    ) -> DialogueSet:
        """One vague dialogue set whose preferred reply is a clarifying question."""
        picks = self._sample_words(domain, 1, rng)
        question = self._thin_question(domain, picks, rng)
        return DialogueSet(
            question=question,
            response=generic_model_response(question, rng=rng),
            gold_response=self.persona.clarifying_response(question, lexicons=self.domain_lexicons),
            domain=domain,
            source=self.config.name,
            metadata={"index": index, "quality": QUALITY_THIN, "duplicate": False},
        )

    def make_interaction_stream(
        self,
        dialogues: Sequence[DialogueSet],
        filler_rate: float = 0.2,
        thin_rate: float = 0.2,
        rng=None,
    ) -> List[DialogueSet]:
        """Interleave substantive dialogue sets with interaction noise.

        The returned list preserves the order of ``dialogues`` and inserts
        filler small-talk and vague (thin) turns between them at the given
        rates.  Thin turns reuse the domain of the neighbouring substantive
        dialogue so the stream's temporal correlation is preserved.  This is
        the stream the on-device framework actually observes; the substantive
        corpus alone is what evaluation measures.
        """
        require_in_unit_interval("filler_rate", filler_rate)
        require_in_unit_interval("thin_rate", thin_rate)
        generator = as_generator(rng if rng is not None else self.config.seed + 7)
        stream: List[DialogueSet] = []
        fallback_domains = list(self.config.domain_names)
        for position, dialogue in enumerate(dialogues):
            if generator.random() < filler_rate:
                stream.append(self.make_filler_dialogue(generator, index=-1))
            if generator.random() < thin_rate:
                domain = dialogue.domain or fallback_domains[
                    int(generator.integers(len(fallback_domains)))
                ]
                stream.append(self.make_thin_dialogue(domain, generator, index=-1))
            stream.append(dialogue)
        return stream

    def generate(self) -> DialogueCorpus:
        """Generate the full corpus (deterministic for a given config)."""
        rng = as_generator(self.config.seed + 1)
        plan = self._sample_plan(self.config.size, rng)
        dialogues: List[DialogueSet] = []
        previous_picks: Dict[str, Tuple[List[str], int]] = {}
        words_needed = max(self.config.words_per_question, 3)
        for index, (domain, quality, duplicate) in enumerate(plan):
            level = 3
            if domain is None:
                question = _FILLER_QUESTIONS[int(rng.integers(len(_FILLER_QUESTIONS)))]
            else:
                if duplicate and domain in previous_picks:
                    picks, level = previous_picks[domain]
                    picks = self._perturb_duplicate(picks, domain, rng)
                else:
                    picks = self._sample_words(domain, words_needed, rng)
                    # Richness level: how much information the dialogue carries
                    # (distinct domain keywords in the question, and how much of
                    # the user's go-to vocabulary the preferred answer covers).
                    level = int(rng.integers(1, 4))
                previous_picks[domain] = (picks, level)
                if quality == QUALITY_THIN:
                    question = self._thin_question(domain, picks, rng)
                else:
                    question = self._rich_question(domain, picks, rng, level=level)
            response = generic_model_response(question, rng=rng)
            gold = self._gold_response(question, domain, quality, level=level)
            dialogues.append(
                DialogueSet(
                    question=question,
                    response=response,
                    gold_response=gold,
                    domain=domain,
                    source=self.config.name,
                    metadata={
                        "index": index,
                        "quality": quality,
                        "duplicate": duplicate,
                        "level": level if domain is not None and quality == QUALITY_RICH else 0,
                    },
                )
            )
        return DialogueCorpus(dialogues, name=self.config.name)


# --------------------------------------------------------------------------- #
# The six dataset analogues.
# --------------------------------------------------------------------------- #

_DATASET_PRESETS: Dict[str, Dict[str, object]] = {
    # Diverse, weak temporal correlation (paper: ALPACA, DOLLY, OPENORCA).
    "alpaca": {
        "domain_names": ("tech", "finance", "cooking", "travel"),
        "question_flavor": "instruction",
        "temporal_correlation": 0.05,
    },
    "dolly": {
        "domain_names": ("tech", "travel", "cooking", "safety"),
        "question_flavor": "instruction",
        "temporal_correlation": 0.10,
    },
    "openorca": {
        "domain_names": ("tech", "finance", "glove_tw26", "glove_cc41"),
        "question_flavor": "reasoning",
        "temporal_correlation": 0.05,
    },
    # Domain-specific, strong temporal correlation (paper: MedDialog,
    # Prosocial-Dialog, Empathetic-Dialog).
    "meddialog": {
        "domain_names": (
            "medical_admin",
            "medical_anatomy",
            "medical_drug",
            "medical_symptom",
        ),
        "question_flavor": "conversation",
        "temporal_correlation": 0.85,
    },
    "prosocial": {
        "domain_names": ("safety", "emotion_trust", "emotion_fear", "emotion_sadness"),
        "question_flavor": "conversation",
        "temporal_correlation": 0.80,
    },
    "empathetic": {
        "domain_names": (
            "emotion_joy",
            "emotion_sadness",
            "emotion_fear",
            "emotion_trust",
        ),
        "question_flavor": "conversation",
        "temporal_correlation": 0.85,
    },
}

# Interaction-noise characteristics of the user–LLM stream for each dataset
# analogue: how often the conversation drifts into pure small talk (filler)
# and vague, low-information turns (thin).  Domain-specific conversational
# corpora (MedDialog / Prosocial / Empathetic analogues) get noisier streams,
# matching the paper's description of temporally correlated conversations with
# "a few rounds of uncontroversial dialogue sets".
_STREAM_NOISE_PRESETS: Dict[str, Dict[str, float]] = {
    "alpaca": {"filler_rate": 0.12, "thin_rate": 0.18},
    "dolly": {"filler_rate": 0.14, "thin_rate": 0.18},
    "openorca": {"filler_rate": 0.10, "thin_rate": 0.15},
    "meddialog": {"filler_rate": 0.25, "thin_rate": 0.25},
    "prosocial": {"filler_rate": 0.25, "thin_rate": 0.25},
    "empathetic": {"filler_rate": 0.25, "thin_rate": 0.25},
}

DATASET_NAMES: Tuple[str, ...] = tuple(_DATASET_PRESETS.keys())

# Which presets model a strongly temporally-correlated stream.
STRONGLY_CORRELATED: Tuple[str, ...] = ("meddialog", "prosocial", "empathetic")


def dataset_preset(name: str) -> Dict[str, object]:
    """The preset parameters for dataset analogue ``name``."""
    if name not in _DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_DATASET_PRESETS)}")
    return dict(_DATASET_PRESETS[name])


def stream_noise_preset(name: str) -> Dict[str, float]:
    """Interaction-noise (filler / thin) rates for dataset analogue ``name``."""
    if name not in _STREAM_NOISE_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_STREAM_NOISE_PRESETS)}")
    return dict(_STREAM_NOISE_PRESETS[name])


def make_generator(
    name: str,
    size: int = 600,
    seed: int = 0,
    lexicons: Optional[LexiconCollection] = None,
    persona: Optional[UserPersona] = None,
    **overrides: object,
) -> SyntheticCorpusGenerator:
    """Build the corpus generator for a dataset analogue (exposes the persona)."""
    config = make_corpus_config(name, size=size, seed=seed, **overrides)
    return SyntheticCorpusGenerator(config, lexicons=lexicons, persona=persona)


def make_corpus_config(
    name: str, size: int = 600, seed: int = 0, **overrides: object
) -> SyntheticCorpusConfig:
    """Build a :class:`SyntheticCorpusConfig` for one of the six dataset analogues."""
    preset = dataset_preset(name)
    preset.update(overrides)
    return SyntheticCorpusConfig(name=name, size=size, seed=seed, **preset)  # type: ignore[arg-type]


def make_corpus(
    name: str,
    size: int = 600,
    seed: int = 0,
    lexicons: Optional[LexiconCollection] = None,
    persona: Optional[UserPersona] = None,
    **overrides: object,
) -> DialogueCorpus:
    """Generate a synthetic corpus analogue of dataset ``name``."""
    config = make_corpus_config(name, size=size, seed=seed, **overrides)
    generator = SyntheticCorpusGenerator(config, lexicons=lexicons, persona=persona)
    return generator.generate()


def make_all_corpora(
    size: int = 600, seed: int = 0, lexicons: Optional[LexiconCollection] = None
) -> Dict[str, DialogueCorpus]:
    """Generate all six dataset analogues keyed by name."""
    return {
        name: make_corpus(name, size=size, seed=seed + offset, lexicons=lexicons)
        for offset, name in enumerate(DATASET_NAMES)
    }


def corpus_persona(name: str, size: int = 600, seed: int = 0) -> UserPersona:
    """The persona used by :func:`make_corpus` for the same arguments."""
    config = make_corpus_config(name, size=size, seed=seed)
    generator = SyntheticCorpusGenerator(config)
    return generator.persona
