"""Shared utilities: seeded RNG, config (de)serialization, logging, timing."""

from repro.utils.config import (
    config_from_dict,
    config_to_dict,
    load_config,
    require_choice,
    require_in_unit_interval,
    require_non_negative,
    require_positive,
    save_config,
)
from repro.utils.logging import Event, EventRecorder, enable_console_logging, get_logger
from repro.utils.rng import (
    ReseedableRNG,
    as_generator,
    choice_without_replacement,
    derive_seed,
    shuffled,
    spawn,
    stream_of_seeds,
)
from repro.utils.timing import SectionTimer, Stopwatch, TimerRecord

__all__ = [
    "Event",
    "EventRecorder",
    "ReseedableRNG",
    "SectionTimer",
    "Stopwatch",
    "TimerRecord",
    "as_generator",
    "choice_without_replacement",
    "config_from_dict",
    "config_to_dict",
    "derive_seed",
    "enable_console_logging",
    "get_logger",
    "load_config",
    "require_choice",
    "require_in_unit_interval",
    "require_non_negative",
    "require_positive",
    "save_config",
    "shuffled",
    "spawn",
    "stream_of_seeds",
]
