"""Seeded random-number management.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator` (or derives one from a parent seed) so that
experiments are reproducible run-to-run.  The helpers here centralise the
common patterns: creating a generator from a seed, spawning independent child
generators for sub-components, and drawing reproducible integer seeds.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5EED


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to a fixed library-wide default seed (reproducibility is the
    default, not an opt-in).  An existing generator is passed through
    unchanged so callers can share one stream deliberately.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be an int, Generator or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def get_generator_state(rng: np.random.Generator) -> dict:
    """Snapshot of a generator's internal state (a plain, picklable dict).

    The checkpoint system stores these snapshots so a resumed run replays
    exactly the random draws an uninterrupted run would have made.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"expected a numpy Generator, got {type(rng)!r}")
    return rng.bit_generator.state


def set_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator to a state captured by :func:`get_generator_state`.

    The generator must use the same bit-generator algorithm the snapshot was
    taken from (numpy validates this and raises otherwise).
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"expected a numpy Generator, got {type(rng)!r}")
    rng.bit_generator.state = state


def spawn(rng: SeedLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Children are derived from integer draws on the parent stream, so two
    calls with the same parent state produce the same children.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: SeedLike, *, salt: int = 0) -> int:
    """Draw a single reproducible integer seed from ``rng``.

    ``salt`` is mixed in so different components deriving from the same
    parent do not collide when they derive in the same order.
    """
    parent = as_generator(rng)
    base = int(parent.integers(0, 2**62 - 1))
    return (base ^ (salt * 0x9E3779B97F4A7C15)) % (2**63 - 1)


def choice_without_replacement(
    rng: SeedLike, items: Sequence, size: int
) -> list:
    """Sample ``size`` distinct items from ``items`` reproducibly."""
    gen = as_generator(rng)
    if size > len(items):
        raise ValueError(
            f"cannot sample {size} items from a sequence of length {len(items)}"
        )
    idx = gen.choice(len(items), size=size, replace=False)
    return [items[int(i)] for i in idx]


def shuffled(rng: SeedLike, items: Sequence) -> list:
    """Return a shuffled copy of ``items`` (the input is left untouched)."""
    gen = as_generator(rng)
    idx = gen.permutation(len(items))
    return [items[int(i)] for i in idx]


def stream_of_seeds(rng: SeedLike) -> Iterator[int]:
    """Yield an endless stream of reproducible integer seeds."""
    gen = as_generator(rng)
    while True:
        yield int(gen.integers(0, 2**63 - 1))


class ReseedableRNG:
    """A generator holder that can be reset to its initial seed.

    Useful for components (e.g. the stream simulator) that must be able to
    replay exactly the same sequence of random draws across repeated runs of
    an experiment.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = _DEFAULT_SEED if seed is None else int(seed)
        self._generator = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        """The seed the generator was (last) initialised with."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The live generator instance."""
        return self._generator

    def reset(self, seed: Optional[int] = None) -> None:
        """Reset to the original seed, or re-seed with a new one."""
        if seed is not None:
            self._seed = int(seed)
        self._generator = np.random.default_rng(self._seed)

    def spawn(self, count: int) -> list[np.random.Generator]:
        """Spawn ``count`` child generators from the current state."""
        return spawn(self._generator, count)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ReseedableRNG(seed={self._seed})"
