"""Wall-clock timing helpers used by the benchmark harness and Figure 3.

The paper reports training time per epoch as a function of the number of
synthesized dialogue sets; this module provides the timer primitives that the
experiment runners use to measure that on CPU.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class TimerRecord:
    """Aggregated timing statistics for one named section."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0
    durations: List[float] = field(default_factory=list)

    @property
    def mean_seconds(self) -> float:
        """Mean duration per call (0.0 if never called)."""
        if self.calls == 0:
            return 0.0
        return self.total_seconds / self.calls

    @property
    def max_seconds(self) -> float:
        """Longest single call (0.0 if never called)."""
        return max(self.durations) if self.durations else 0.0


class Stopwatch:
    """A restartable stopwatch measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Reset elapsed time to zero and stop."""
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Elapsed seconds, including the currently running span if any."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running


class SectionTimer:
    """Collects named timing sections, e.g. ``selection``, ``finetune``.

    ``on_section`` (settable any time) is called as ``on_section(name,
    seconds)`` after each measured section — the hook the serving metrics
    registry uses to mirror pipeline-stage durations into histograms
    without the timer depending on the registry.
    """

    def __init__(self, on_section: Optional[Callable[[str, float], None]] = None) -> None:
        self._records: Dict[str, TimerRecord] = {}
        self.on_section = on_section

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Context manager measuring one run of a named section."""
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            record = self._records.setdefault(name, TimerRecord(name=name))
            record.total_seconds += duration
            record.calls += 1
            record.durations.append(duration)
            if self.on_section is not None:
                self.on_section(name, duration)

    def record(self, name: str) -> TimerRecord:
        """The record for ``name`` (created empty if missing)."""
        return self._records.setdefault(name, TimerRecord(name=name))

    def records(self) -> Dict[str, TimerRecord]:
        """Mapping of all section names to their records."""
        return dict(self._records)

    def total(self, name: str) -> float:
        """Total seconds spent in section ``name`` (0.0 if never entered)."""
        record = self._records.get(name)
        return record.total_seconds if record else 0.0

    def summary(self) -> Dict[str, float]:
        """A flat ``{name: total_seconds}`` summary."""
        return {name: record.total_seconds for name, record in self._records.items()}
