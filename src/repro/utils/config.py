"""Configuration helpers shared by experiments and examples.

All experiment configuration objects in :mod:`repro.experiments` are plain
dataclasses.  The helpers here provide uniform serialization to/from
dictionaries and JSON files, plus validation utilities used across configs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Type, TypeVar, Union

T = TypeVar("T")


def config_to_dict(config: Any) -> dict:
    """Convert a (possibly nested) dataclass config into a plain dict."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            field.name: config_to_dict(getattr(config, field.name))
            for field in dataclasses.fields(config)
        }
    if isinstance(config, dict):
        return {key: config_to_dict(value) for key, value in config.items()}
    if isinstance(config, (list, tuple)):
        return [config_to_dict(value) for value in config]
    return config


def config_from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Instantiate dataclass ``cls`` from ``data``.

    Nested dataclass fields are recursively constructed.  Unknown keys raise
    ``ValueError`` so typos in experiment configs fail loudly instead of being
    silently dropped.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass type")
    field_map = {field.name: field for field in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ValueError(f"unknown config keys for {cls.__name__}: {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        field = field_map[name]
        field_type = field.type
        resolved = _resolve_type(field_type, cls)
        if (
            resolved is not None
            and dataclasses.is_dataclass(resolved)
            and isinstance(value, Mapping)
        ):
            kwargs[name] = config_from_dict(resolved, value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _resolve_type(field_type: Any, owner: type) -> Any:
    """Best-effort resolution of a dataclass field's annotation to a class."""
    if isinstance(field_type, type):
        return field_type
    if isinstance(field_type, str):
        module = __import__(owner.__module__, fromlist=["__dict__"])
        return getattr(module, field_type, None)
    return None


def save_config(config: Any, path: Union[str, Path]) -> Path:
    """Serialize a dataclass config to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(config_to_dict(config), indent=2, sort_keys=True))
    return path


def load_config(cls: Type[T], path: Union[str, Path]) -> T:
    """Load a dataclass config of type ``cls`` from a JSON file."""
    data = json.loads(Path(path).read_text())
    return config_from_dict(cls, data)


def require_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_in_unit_interval(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


def require_choice(name: str, value: Any, choices: tuple) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
