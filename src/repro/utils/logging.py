"""Minimal structured logging used by experiment runners and the framework.

The library deliberately avoids configuring the root logger; it exposes a
namespaced logger factory plus a tiny in-memory event recorder that experiment
runners use to capture progress (fine-tuning rounds, buffer statistics) that
tests can assert on without parsing text output.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library-namespaced logger (``repro`` or ``repro.<name>``)."""
    if name:
        return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")
    return logging.getLogger(_LIBRARY_LOGGER_NAME)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the library logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    has_console = any(
        isinstance(handler, logging.StreamHandler) for handler in logger.handlers
    )
    if not has_console:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)


@dataclass
class Event:
    """A single recorded event with a name, timestamp and payload."""

    name: str
    timestamp: float
    payload: dict[str, Any] = field(default_factory=dict)


class EventRecorder:
    """In-memory event log used by the framework and experiment runners.

    Events are cheap dictionaries; tests and the evaluation harness query them
    by name (e.g. ``finetune_round``, ``buffer_replace``) to reconstruct what
    happened during a streaming run.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, name: str, **payload: Any) -> Event:
        """Record an event and return it."""
        event = Event(name=name, timestamp=time.time(), payload=dict(payload))
        self._events.append(event)
        return event

    def events(self, name: Optional[str] = None) -> list[Event]:
        """All events, optionally filtered by name."""
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def count(self, name: str) -> int:
        """Number of events recorded under ``name``."""
        return sum(1 for event in self._events if event.name == name)

    def last(self, name: str) -> Optional[Event]:
        """Most recent event with ``name``, or ``None``."""
        for event in reversed(self._events):
            if event.name == name:
                return event
        return None

    def payloads(self, name: str) -> list[dict[str, Any]]:
        """Payload dictionaries of all events named ``name`` in order."""
        return [event.payload for event in self._events if event.name == name]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def merge(self, others: Iterable["EventRecorder"]) -> None:
        """Append events from other recorders, keeping chronological order."""
        merged = list(self._events)
        for other in others:
            merged.extend(other.events())
        merged.sort(key=lambda event: event.timestamp)
        self._events = merged

    def __len__(self) -> int:
        return len(self._events)
