"""Snapshot export: atomic JSON writes and the ``--metrics-out`` thread."""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, Union

from repro.obs.registry import MetricsRegistry


def write_snapshot(path: Union[str, Path], snapshot: Dict[str, object]) -> Path:
    """Write one snapshot as JSON, atomically (tmp file + rename).

    Readers polling the file — dashboards, the CI metrics checker — never
    observe a torn document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


class PeriodicSnapshotter:
    """Background thread writing registry snapshots every ``interval`` seconds.

    Purely read-only with respect to the serving path: it samples the
    registry and writes a file, so it can never perturb transcripts.  A
    final snapshot is always written on :meth:`stop`, so the file reflects
    the drained end state even for runs shorter than one interval.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Union[str, Path],
        interval_seconds: float = 1.0,
        snapshot_fn: Callable[[], Dict[str, object]] | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be > 0, got {interval_seconds}")
        self.registry = registry
        self.path = Path(path)
        self.interval_seconds = interval_seconds
        self._snapshot_fn = snapshot_fn if snapshot_fn is not None else registry.snapshot
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.writes = 0

    def _write_once(self) -> None:
        write_snapshot(self.path, self._snapshot_fn())
        self.writes += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._write_once()

    def start(self) -> "PeriodicSnapshotter":
        if self._thread is not None:
            raise RuntimeError("snapshotter already started")
        self._write_once()  # the file exists as soon as the run starts
        self._thread = threading.Thread(
            target=self._loop, name="metrics-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._write_once()  # final drained-state snapshot

    def __enter__(self) -> "PeriodicSnapshotter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
