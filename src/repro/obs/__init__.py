"""``repro.obs`` — lightweight observability for the serving stack.

A dependency-free metrics registry (counters, gauges, histograms with
fixed bucket bounds) plus per-stage timers, deterministic JSON snapshots
and cross-shard snapshot merging.  See ``docs/observability.md`` for the
metric catalog and snapshot schema.
"""

from repro.obs.export import PeriodicSnapshotter, write_snapshot
from repro.obs.registry import (
    COUNT_BUCKETS,
    GAUGE_MERGE_MODES,
    SNAPSHOT_SCHEMA_VERSION,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    observe_health,
    snapshot_key_set,
)

__all__ = [
    "COUNT_BUCKETS",
    "GAUGE_MERGE_MODES",
    "SNAPSHOT_SCHEMA_VERSION",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSnapshotter",
    "merge_snapshots",
    "metric_key",
    "observe_health",
    "snapshot_key_set",
    "write_snapshot",
]
