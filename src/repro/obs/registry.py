"""Dependency-free metrics registry for the serving stack.

Design constraints, in order:

* **Digest neutrality.**  Instrumentation must never perturb the model
  path: metrics read ``time.perf_counter`` and integer counts only —
  never any RNG stream — so transcript digests with metrics enabled are
  byte-identical to digests without.
* **Deterministic snapshots.**  Histograms use *fixed* bucket bounds
  chosen at registration time, and every snapshot section is emitted in
  sorted key order, so two runs over the same load produce snapshots
  that differ only in measured wall-clock values, never in shape.
* **Mergeable.**  Sharded serving produces one snapshot per worker;
  :func:`merge_snapshots` folds them into a single view with well-defined
  semantics per instrument (counters and histogram buckets sum; each
  gauge carries its own merge mode).

The registry is intentionally tiny: three instrument kinds plus a timer
helper, a snapshot, and a merge.  No background threads, no external
dependencies, no global state — callers own their registry instance and
thread it to the components they want instrumented.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

#: Version stamped into every snapshot; bump on breaking schema changes.
SNAPSHOT_SCHEMA_VERSION = 1

#: Default bucket bounds (seconds) for latency-style histograms.  A final
#: +inf bucket is always implied; these bounds cover ~0.5 ms session swaps
#: up to multi-minute fine-tune rounds.
TIME_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Default bucket bounds for small-count histograms (batch occupancy,
#: queue depth samples).
COUNT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Gauge merge modes, in the order :func:`merge_snapshots` documents them.
GAUGE_MERGE_MODES = ("last", "sum", "max", "min")


def _format_labels(labels: Mapping[str, object]) -> str:
    """Canonical ``{k=v,...}`` suffix (sorted keys; empty string if none)."""
    if not labels:
        return ""
    parts = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return "{" + parts + "}"


def metric_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """The canonical snapshot key for ``name`` under ``labels``."""
    return name + _format_labels(labels or {})


class Counter:
    """A monotonically increasing count (resets only with its registry)."""

    __slots__ = ("key", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key!r} cannot decrease (got {amount})")
        self._value += amount

    def set_(self, value: int) -> None:
        """Internal: overwrite the count (compat shims only — not public API)."""
        self._value = int(value)

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value with an explicit cross-shard merge mode."""

    __slots__ = ("key", "merge", "_value")

    def __init__(self, key: str, merge: str = "last") -> None:
        if merge not in GAUGE_MERGE_MODES:
            raise ValueError(f"unknown gauge merge mode {merge!r} for {key!r}")
        self.key = key
        self.merge = merge
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound bucketed distribution (cumulative counts, +inf implied)."""

    __slots__ = ("key", "bounds", "bucket_counts", "_sum", "_count")

    def __init__(self, key: str, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError(f"histogram {key!r} needs at least one bucket bound")
        if list(ordered) != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError(f"histogram {key!r} bounds must be strictly increasing")
        self.key = key
        self.bounds = ordered
        # One slot per finite bound plus the implicit +inf overflow bucket.
        self.bucket_counts = [0] * (len(ordered) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, and histograms.

    Instruments are identified by ``name`` plus optional labels; repeated
    registration with the same key returns the same instrument (and raises
    if the caller asks for a conflicting kind or configuration under an
    existing key).  All mutation of the registry *structure* is locked;
    individual observations are plain attribute updates, safe under the
    GIL for the single-writer-per-instrument pattern the serving stack
    uses.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument registration ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            found = self._counters.get(key)
            if found is None:
                self._ensure_unclaimed(key, self._counters)
                found = self._counters[key] = Counter(key)
        return found

    def gauge(self, name: str, merge: str = "last", **labels: object) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            found = self._gauges.get(key)
            if found is None:
                self._ensure_unclaimed(key, self._gauges)
                found = self._gauges[key] = Gauge(key, merge=merge)
            elif found.merge != merge:
                raise ValueError(
                    f"gauge {key!r} already registered with merge mode "
                    f"{found.merge!r}, not {merge!r}"
                )
        return found

    def histogram(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS, **labels: object
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            found = self._histograms.get(key)
            if found is None:
                self._ensure_unclaimed(key, self._histograms)
                found = self._histograms[key] = Histogram(key, buckets)
            elif found.bounds != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {key!r} already registered with bounds "
                    f"{found.bounds}, not {tuple(buckets)}"
                )
        return found

    def _ensure_unclaimed(self, key: str, owner: Mapping[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not owner and key in table:
                raise ValueError(f"metric key {key!r} already registered as a {kind}")

    # -- timers ------------------------------------------------------------

    @contextmanager
    def timer(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS, **labels: object
    ) -> Iterator[None]:
        """Measure one span into the histogram ``name`` (perf_counter only)."""
        histogram = self.histogram(name, buckets=buckets, **labels)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot; every section in sorted key order."""
        with self._lock:
            counters = {key: c.value for key, c in sorted(self._counters.items())}
            gauges = {
                key: {"value": g.value, "merge": g.merge}
                for key, g in sorted(self._gauges.items())
            }
            histograms = {
                key: {
                    "bounds": list(h.bounds),
                    "counts": list(h.bucket_counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for key, h in sorted(self._histograms.items())
            }
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def key_set(self) -> List[str]:
        """Sorted list of every registered metric key (all kinds)."""
        with self._lock:
            keys = [*self._counters, *self._gauges, *self._histograms]
        return sorted(keys)


def snapshot_key_set(snapshot: Mapping[str, object]) -> List[str]:
    """Sorted metric keys present in a snapshot produced by any registry."""
    keys: List[str] = []
    for section in ("counters", "gauges", "histograms"):
        keys.extend(snapshot.get(section, {}))
    return sorted(keys)


def merge_snapshots(snapshots: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Fold per-shard snapshots into one aggregate view.

    * counters: summed
    * histograms: per-bucket counts, sum and count summed (bounds must
      match — mismatched bounds mean mismatched code versions and raise)
    * gauges: folded per their recorded merge mode (``sum``/``max``/
      ``min``; ``last`` keeps the value from the last snapshot seen)
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Dict[str, object]] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    schema = SNAPSHOT_SCHEMA_VERSION
    for snap in snapshots:
        schema = max(schema, int(snap.get("schema", SNAPSHOT_SCHEMA_VERSION)))
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + int(value)
        for key, entry in snap.get("gauges", {}).items():
            mode = entry.get("merge", "last")
            value = float(entry["value"])
            seen = gauges.get(key)
            if seen is None:
                gauges[key] = {"value": value, "merge": mode}
                continue
            if mode == "sum":
                seen["value"] = float(seen["value"]) + value
            elif mode == "max":
                seen["value"] = max(float(seen["value"]), value)
            elif mode == "min":
                seen["value"] = min(float(seen["value"]), value)
            else:  # "last"
                seen["value"] = value
        for key, entry in snap.get("histograms", {}).items():
            seen = histograms.get(key)
            if seen is None:
                histograms[key] = {
                    "bounds": list(entry["bounds"]),
                    "counts": list(entry["counts"]),
                    "sum": float(entry["sum"]),
                    "count": int(entry["count"]),
                }
                continue
            if seen["bounds"] != list(entry["bounds"]):
                raise ValueError(f"histogram {key!r} bucket bounds differ across shards")
            seen["counts"] = [a + b for a, b in zip(seen["counts"], entry["counts"])]
            seen["sum"] = float(seen["sum"]) + float(entry["sum"])
            seen["count"] = int(seen["count"]) + int(entry["count"])
    return {
        "schema": schema,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def observe_health(registry: MetricsRegistry, report: Mapping[str, Mapping[str, object]]) -> None:
    """Fold a ``health_report()``-style dict into labeled severity gauges.

    Each component becomes ``health_state{component=<name>}`` with value
    0 (ok), 1 (degraded) or 2 (failed) — merge mode ``max`` so the
    sharded merged view reports the worst state across workers.
    """
    severity = {"ok": 0, "degraded": 1, "failed": 2}
    for component in sorted(report):
        state = str(report[component].get("state", "ok"))
        registry.gauge("health_state", merge="max", component=component).set(
            severity.get(state, 2)
        )
