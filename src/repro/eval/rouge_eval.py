"""ROUGE-1 evaluation of a personalized model on held-out dialogue sets.

For every dialogue set in the evaluation split, the same user question is fed
to the model, a response is sampled (temperature 0.5, as in the paper), and
ROUGE-1 F1 is computed against the gold (user-preferred) response.  The
evaluator keeps a fixed subsample across calls so that learning-curve points
for different methods and rounds are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dialogue import DialogueCorpus, DialogueSet
from repro.llm.generation import GenerationConfig
from repro.llm.model import OnDeviceLLM
from repro.textmetrics.rouge import rouge_1_f1
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


@dataclass
class EvaluationConfig:
    """Evaluation knobs."""

    temperature: float = 0.5
    max_new_tokens: int = 24
    greedy: bool = False
    repetition_penalty: float = 1.3
    subset_size: Optional[int] = 64
    seed: int = 0
    # Questions decoded together per padded batch (the fast inference path).
    # ``None`` falls back to one-question-at-a-time decoding.  Greedy scores
    # are identical either way; *sampled* scores depend on the rng draw order
    # and therefore on this value — compare temperature-sampled runs only at
    # the same batch_size.
    batch_size: Optional[int] = 32

    def __post_init__(self) -> None:
        require_positive("temperature", self.temperature)
        require_positive("max_new_tokens", self.max_new_tokens)
        if self.repetition_penalty < 1.0:
            raise ValueError(
                f"repetition_penalty must be >= 1.0, got {self.repetition_penalty}"
            )
        if self.subset_size is not None:
            require_positive("subset_size", self.subset_size)
        if self.batch_size is not None:
            require_positive("batch_size", self.batch_size)


@dataclass
class EvaluationReport:
    """Per-question scores plus the aggregate."""

    mean_rouge_1: float
    scores: List[float]
    num_evaluated: int

    @property
    def median_rouge_1(self) -> float:
        if not self.scores:
            return 0.0
        return float(np.median(self.scores))


class ResponseEvaluator:
    """Callable evaluator: ``evaluator(llm) -> mean ROUGE-1``."""

    def __init__(
        self,
        eval_dialogues: Sequence[DialogueSet],
        config: Optional[EvaluationConfig] = None,
    ) -> None:
        if not eval_dialogues:
            raise ValueError("ResponseEvaluator requires a non-empty evaluation set")
        self.config = config or EvaluationConfig()
        dialogues = list(eval_dialogues)
        rng = as_generator(self.config.seed)
        if self.config.subset_size is not None and self.config.subset_size < len(dialogues):
            indices = rng.choice(len(dialogues), size=self.config.subset_size, replace=False)
            dialogues = [dialogues[int(i)] for i in indices]
        self.dialogues = dialogues
        self._generation_seed = int(rng.integers(0, 2**31 - 1))

    @classmethod
    def from_corpus(
        cls, corpus: DialogueCorpus, config: Optional[EvaluationConfig] = None
    ) -> "ResponseEvaluator":
        """Build from a :class:`DialogueCorpus` evaluation split."""
        return cls(corpus.dialogues(), config=config)

    def _generation_config(self, llm: OnDeviceLLM) -> GenerationConfig:
        return GenerationConfig(
            max_new_tokens=self.config.max_new_tokens,
            temperature=self.config.temperature,
            greedy=self.config.greedy,
            repetition_penalty=self.config.repetition_penalty,
            stop_token_id=llm.tokenizer.vocabulary.eos_id,
        )

    def _references(self) -> List[str]:
        return [
            dialogue.gold_response
            if dialogue.gold_response is not None
            else dialogue.response
            for dialogue in self.dialogues
        ]

    def evaluate(self, llm: OnDeviceLLM) -> EvaluationReport:
        """Full evaluation with per-question scores.

        Questions are decoded in padded batches of ``config.batch_size`` so
        the model forwards are shared across the evaluation set; with
        ``batch_size=None`` each question is decoded on its own.  Either way a
        fresh, fixed-seed generator per evaluation keeps sampling noise
        identical across methods and fine-tuning rounds.
        """
        generation = self._generation_config(llm)
        rng = as_generator(self._generation_seed)
        references = self._references()
        generated: List[str] = []
        if self.config.batch_size is None:
            for dialogue in self.dialogues:
                generated.append(
                    llm.respond(dialogue.question, generation=generation, rng=rng)
                )
        else:
            questions = [dialogue.question for dialogue in self.dialogues]
            for start in range(0, len(questions), self.config.batch_size):
                chunk = questions[start : start + self.config.batch_size]
                generated.extend(llm.respond_batch(chunk, generation=generation, rng=rng))
        scores = [
            rouge_1_f1(candidate, reference)
            for candidate, reference in zip(generated, references)
        ]
        mean = float(np.mean(scores)) if scores else 0.0
        return EvaluationReport(mean_rouge_1=mean, scores=scores, num_evaluated=len(scores))

    def __call__(self, llm: OnDeviceLLM) -> float:
        return self.evaluate(llm).mean_rouge_1
