"""Learning-curve containers and comparisons (the Figure 2 profiling tool)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.framework import LearningCurvePoint, PersonalizationResult


@dataclass
class LearningCurve:
    """ROUGE-1 as a function of the number of dialogue sets seen."""

    method: str
    points: List[LearningCurvePoint] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: PersonalizationResult) -> "LearningCurve":
        """Extract the curve recorded by a personalization run."""
        return cls(method=result.selector_name, points=list(result.learning_curve))

    def seen(self) -> List[int]:
        """x-axis: number of dialogue sets seen at each measurement."""
        return [point.seen for point in self.points]

    def rouge(self) -> List[float]:
        """y-axis: ROUGE-1 at each measurement."""
        return [point.rouge_1 for point in self.points]

    def eval_seconds(self) -> List[float]:
        """Evaluator wall-clock seconds behind each measurement point."""
        return [point.eval_seconds for point in self.points]

    def total_eval_seconds(self) -> float:
        """Total evaluator wall-clock time spent building this curve."""
        return float(sum(point.eval_seconds for point in self.points))

    @property
    def final(self) -> float:
        """ROUGE-1 at the last measurement (0.0 for an empty curve)."""
        return self.points[-1].rouge_1 if self.points else 0.0

    @property
    def initial(self) -> float:
        """ROUGE-1 at the first measurement (0.0 for an empty curve)."""
        return self.points[0].rouge_1 if self.points else 0.0

    def improvement(self) -> float:
        """Final minus initial ROUGE-1."""
        return self.final - self.initial

    def is_monotone_increasing(self, tolerance: float = 0.0) -> bool:
        """Whether the curve never drops by more than ``tolerance``."""
        values = self.rouge()
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    def area_under_curve(self) -> float:
        """Trapezoidal area under ROUGE-1 vs. seen-count, normalized by x-range.

        Captures *learning speed*: two curves reaching the same final score
        differ in AUC when one gets there earlier.
        """
        if len(self.points) < 2:
            return self.final
        x = np.asarray(self.seen(), dtype=np.float64)
        y = np.asarray(self.rouge(), dtype=np.float64)
        span = x[-1] - x[0]
        if span <= 0:
            return float(y[-1])
        return float(np.trapezoid(y, x) / span)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form."""
        return {
            "method": self.method,
            "seen": self.seen(),
            "rouge_1": self.rouge(),
            "eval_seconds": self.eval_seconds(),
        }


def compare_final_scores(curves: Sequence[LearningCurve]) -> Dict[str, float]:
    """Final ROUGE-1 per method."""
    return {curve.method: curve.final for curve in curves}


def rank_methods(curves: Sequence[LearningCurve]) -> List[Tuple[str, float]]:
    """Methods sorted by final ROUGE-1, best first."""
    return sorted(
        ((curve.method, curve.final) for curve in curves), key=lambda item: -item[1]
    )


def format_learning_curves(curves: Sequence[LearningCurve]) -> str:
    """A plain-text table of the curves (one row per measurement point)."""
    lines = ["seen\t" + "\t".join(curve.method for curve in curves)]
    num_rows = max((len(curve.points) for curve in curves), default=0)
    for row in range(num_rows):
        cells = []
        seen_value = ""
        for curve in curves:
            if row < len(curve.points):
                seen_value = str(curve.points[row].seen)
                cells.append(f"{curve.points[row].rouge_1:.4f}")
            else:
                cells.append("-")
        lines.append(f"{seen_value}\t" + "\t".join(cells))
    return "\n".join(lines)
