"""Evaluation harness: ROUGE-1 response evaluation and learning curves."""

from repro.eval.learning_curve import (
    LearningCurve,
    compare_final_scores,
    format_learning_curves,
    rank_methods,
)
from repro.eval.rouge_eval import EvaluationConfig, EvaluationReport, ResponseEvaluator

__all__ = [
    "EvaluationConfig",
    "EvaluationReport",
    "LearningCurve",
    "ResponseEvaluator",
    "compare_final_scores",
    "format_learning_curves",
    "rank_methods",
]
