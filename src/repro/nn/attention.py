"""Causal multi-head self-attention.

The projection layers are named ``q_proj``, ``k_proj``, ``v_proj`` and
``o_proj`` to mirror the layer names the paper targets with LoRA ("the
trainable layers are the QKV layers (q_proj, k_proj, v_proj) and attention
output layer (o_proj)"), so the LoRA injection utilities can address them by
the same names.

For autoregressive decoding the layer supports an optional
:class:`LayerKVCache`: the keys/values of previously processed positions are
kept as plain arrays, so each incremental step only projects the newly fed
tokens and attends against the cached context (O(T) work per token instead of
O(T²)).  Because attention is causal, the cached keys/values are exactly what
a full forward over the whole window would compute, so incremental decoding
is numerically equivalent to the full-context forward.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator


class LayerKVCache:
    """Cached key/value arrays of one attention layer.

    ``keys`` and ``values`` have shape ``(batch, heads, cached_len, head_dim)``
    and hold plain numpy data (no autograd graph) — the cache is an inference
    structure and is meant to be used inside :func:`repro.nn.inference_mode`.
    """

    __slots__ = ("keys", "values")

    def __init__(self) -> None:
        self.keys: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        """Number of cached positions (0 when empty)."""
        return 0 if self.keys is None else int(self.keys.shape[2])

    def reset(self) -> None:
        """Drop all cached positions."""
        self.keys = None
        self.values = None

    def extend(self, keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append new positions and return the full (cached + new) arrays."""
        if self.keys is None:
            self.keys = keys
            self.values = values
        else:
            self.keys = np.concatenate([self.keys, keys], axis=2)
            self.values = np.concatenate([self.values, values], axis=2)
        return self.keys, self.values


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention with a causal mask."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        rng = as_generator(rng)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.o_proj = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout_rate, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, T, D) -> (B, H, T, head_dim)."""
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, H, T, head_dim) -> (B, T, D)."""
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        cache: Optional[LayerKVCache] = None,
    ) -> Tensor:
        """Apply causal self-attention.

        ``attention_mask`` is an optional boolean array where ``False`` marks
        padding positions that must not be attended to; its shape is
        ``(B, T)`` without a cache and ``(B, past + T)`` with one (covering
        the cached context as well as the newly fed tokens).

        When ``cache`` is given, ``x`` holds only the newly fed positions;
        their keys/values are appended to the cache and the queries attend
        over the full cached context.
        """
        if cache is not None and is_grad_enabled():
            # The cache stores raw arrays: cached positions would silently
            # drop out of the autograd graph.  Fail loudly instead.
            raise RuntimeError(
                "KV cache is an inference structure; wrap the forward in "
                "repro.nn.inference_mode() when decoding with a cache"
            )
        batch, seq, _ = x.shape
        queries = self._split_heads(self.q_proj(x), batch, seq)
        keys = self._split_heads(self.k_proj(x), batch, seq)
        values = self._split_heads(self.v_proj(x), batch, seq)

        past = 0
        if cache is not None:
            past = cache.length
            full_keys, full_values = cache.extend(keys.data, values.data)
            if past > 0:
                keys = Tensor(full_keys)
                values = Tensor(full_values)
        total = past + seq

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = queries.matmul(keys.transpose(0, 1, 3, 2)) * scale

        if attention_mask is None and seq == 1:
            # Single-position incremental step without padding: the causal row
            # hides nothing, so the mask (and its allocation) can be skipped.
            weights = F.softmax(scores, axis=-1)
            weights = self.attn_dropout(weights)
            context = weights.matmul(values)
            merged = self._merge_heads(context, batch, seq)
            return self.o_proj(merged)

        causal = F.attention_scores_mask(seq, past_len=past)  # (T, past + T)
        mask = np.broadcast_to(causal, (batch, self.num_heads, seq, total)).copy()
        if attention_mask is not None:
            padding = ~np.asarray(attention_mask, dtype=bool)  # True = padding
            if padding.shape[-1] != total:
                raise ValueError(
                    f"attention_mask covers {padding.shape[-1]} positions, "
                    f"expected {total} (cached {past} + new {seq})"
                )
            mask |= padding[:, None, None, :]
            # A fully masked row (query at a padding position) would make softmax
            # degenerate; allow self-attention on the diagonal to keep it finite.
            diag = np.eye(seq, total, k=past, dtype=bool)[None, None, :, :]
            mask &= ~diag

        scores = scores.masked_fill(mask, -1e9)
        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        context = weights.matmul(values)
        merged = self._merge_heads(context, batch, seq)
        return self.o_proj(merged)
