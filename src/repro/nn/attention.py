"""Causal multi-head self-attention.

The projection layers are named ``q_proj``, ``k_proj``, ``v_proj`` and
``o_proj`` to mirror the layer names the paper targets with LoRA ("the
trainable layers are the QKV layers (q_proj, k_proj, v_proj) and attention
output layer (o_proj)"), so the LoRA injection utilities can address them by
the same names.

For autoregressive decoding the layer supports an optional
:class:`LayerKVCache`: keys/values of previously processed positions live in
preallocated capacity buffers, so each incremental step only projects the
newly fed tokens, writes them into the buffer (no per-token concatenation),
and attends against the cached context (O(T) work per token instead of
O(T²)).  Because attention is causal, the cached keys/values are exactly what
a full forward over the whole window would compute, so incremental decoding
is numerically equivalent to the full-context forward.

Both the autograd path and the raw no-grad path run the same fused
``scaled_dot_product_attention`` backend kernel, which keeps their outputs
bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.backend import active as _active
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator


class LayerKVCache:
    """Cached key/value buffers of one attention layer.

    ``keys`` and ``values`` expose shape ``(batch, heads, cached_len,
    head_dim)`` views into preallocated capacity buffers (or ``None`` when
    empty).  The cache holds plain numpy data (no autograd graph) — it is an
    inference structure and is meant to be used inside
    :func:`repro.nn.inference_mode`.

    ``capacity`` pre-sizes the buffers (e.g. to the model's ``max_seq_len``)
    so steady-state decoding never reallocates; without it the buffers grow
    geometrically.
    """

    __slots__ = ("_keys", "_values", "_length", "_capacity_hint")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0
        self._capacity_hint = int(capacity) if capacity else 0

    @property
    def keys(self) -> Optional[np.ndarray]:
        """View of the cached keys, ``(B, H, cached_len, head_dim)``."""
        return None if self._length == 0 else self._keys[:, :, : self._length]

    @property
    def values(self) -> Optional[np.ndarray]:
        """View of the cached values, ``(B, H, cached_len, head_dim)``."""
        return None if self._length == 0 else self._values[:, :, : self._length]

    @property
    def length(self) -> int:
        """Number of cached positions (0 when empty)."""
        return self._length

    def reset(self) -> None:
        """Drop all cached positions (capacity buffers are kept for reuse)."""
        self._length = 0

    def extend(self, keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append new positions and return views of the full (cached + new) arrays."""
        batch, heads, new, head_dim = keys.shape
        needed = self._length + new
        buffer = self._keys
        compatible = (
            buffer is not None
            and buffer.shape[0] == batch
            and buffer.shape[1] == heads
            and buffer.shape[3] == head_dim
        )
        if not compatible and self._length > 0:
            raise ValueError(
                f"cache holds (batch={self._keys.shape[0]}, heads={self._keys.shape[1]}, "
                f"head_dim={self._keys.shape[3]}) but got (batch={batch}, heads={heads}, "
                f"head_dim={head_dim}); reset() before reusing with a new shape"
            )
        if not compatible or buffer.shape[2] < needed:
            capacity = max(needed, self._capacity_hint)
            if compatible:
                capacity = max(capacity, 2 * buffer.shape[2])
            new_keys = np.empty((batch, heads, capacity, head_dim), dtype=keys.dtype)
            new_values = np.empty((batch, heads, capacity, head_dim), dtype=values.dtype)
            if compatible and self._length > 0:
                new_keys[:, :, : self._length] = self._keys[:, :, : self._length]
                new_values[:, :, : self._length] = self._values[:, :, : self._length]
            self._keys = new_keys
            self._values = new_values
        self._keys[:, :, self._length : needed] = keys
        self._values[:, :, self._length : needed] = values
        self._length = needed
        return self._keys[:, :, :needed], self._values[:, :, :needed]

    def append_token(
        self, key_row: np.ndarray, value_row: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fast single-position append for batch-1 decode.

        ``key_row``/``value_row`` have shape ``(heads, head_dim)``.  Falls
        back to :meth:`extend` when the buffers are missing, full, or not
        batch-1.
        """
        index = self._length
        buffer = self._keys
        if buffer is None or buffer.shape[0] != 1 or buffer.shape[2] <= index:
            return self.extend(key_row[None, :, None, :], value_row[None, :, None, :])
        buffer[0, :, index] = key_row
        self._values[0, :, index] = value_row
        self._length = index + 1
        return buffer[:, :, : self._length], self._values[:, :, : self._length]


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention with a causal mask."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        rng = as_generator(rng)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.o_proj = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout_rate, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, T, D) -> (B, H, T, head_dim)."""
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, H, T, head_dim) -> (B, T, D)."""
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def _combined_mask(
        self,
        batch: int,
        seq: int,
        past: int,
        attention_mask: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Causal + padding mask, ``(B, H, T, past+T)`` boolean (True hides).

        Returns ``None`` for the single-position step without padding — the
        causal row hides nothing, so the mask (and its allocation) can be
        skipped entirely.
        """
        if attention_mask is None and seq == 1:
            return None
        total = past + seq
        causal = F.attention_scores_mask(seq, past_len=past)  # (T, past + T)
        mask = np.broadcast_to(causal, (batch, self.num_heads, seq, total)).copy()
        if attention_mask is not None:
            padding = ~np.asarray(attention_mask, dtype=bool)  # True = padding
            if padding.shape[-1] != total:
                raise ValueError(
                    f"attention_mask covers {padding.shape[-1]} positions, "
                    f"expected {total} (cached {past} + new {seq})"
                )
            mask |= padding[:, None, None, :]
            # A fully masked row (query at a padding position) would make softmax
            # degenerate; allow self-attention on the diagonal to keep it finite.
            diag = np.eye(seq, total, k=past, dtype=bool)[None, None, :, :]
            mask &= ~diag
        return mask

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        cache: Optional[LayerKVCache] = None,
    ) -> Tensor:
        """Apply causal self-attention.

        ``attention_mask`` is an optional boolean array where ``False`` marks
        padding positions that must not be attended to; its shape is
        ``(B, T)`` without a cache and ``(B, past + T)`` with one (covering
        the cached context as well as the newly fed tokens).

        When ``cache`` is given, ``x`` holds only the newly fed positions;
        their keys/values are appended to the cache and the queries attend
        over the full cached context.
        """
        if cache is not None and is_grad_enabled():
            # The cache stores raw arrays: cached positions would silently
            # drop out of the autograd graph.  Fail loudly instead.
            raise RuntimeError(
                "KV cache is an inference structure; wrap the forward in "
                "repro.nn.inference_mode() when decoding with a cache"
            )
        if not is_grad_enabled():
            return Tensor(self.raw_forward(x.data, attention_mask, cache))

        batch, seq, _ = x.shape
        queries = self._split_heads(self.q_proj(x), batch, seq)
        keys = self._split_heads(self.k_proj(x), batch, seq)
        values = self._split_heads(self.v_proj(x), batch, seq)
        scale = 1.0 / np.sqrt(self.head_dim)
        mask = self._combined_mask(batch, seq, 0, attention_mask)
        dropout_mask = self.attn_dropout.draw_mask((batch, self.num_heads, seq, seq))
        context = F.scaled_dot_product_attention(
            queries, keys, values, scale, mask, dropout_mask
        )
        merged = self._merge_heads(context, batch, seq)
        return self.o_proj(merged)

    def raw_forward(
        self,
        x: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        cache: Optional[LayerKVCache] = None,
    ) -> np.ndarray:
        """Array-level forward for the no-grad decode path (same kernels)."""
        backend = _active()
        batch, seq, _ = x.shape
        heads, head_dim = self.num_heads, self.head_dim
        queries = (
            self.q_proj.raw_forward(x).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        )
        keys = (
            self.k_proj.raw_forward(x).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        )
        values = (
            self.v_proj.raw_forward(x).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        )

        past = 0
        if cache is not None:
            past = cache.length
            keys, values = cache.extend(keys, values)

        scale = 1.0 / np.sqrt(head_dim)
        mask = self._combined_mask(batch, seq, past, attention_mask)
        dropout_mask = self.attn_dropout.draw_mask(
            (batch, heads, seq, past + seq)
        )

        if batch == 1 and seq == 1 and mask is None and dropout_mask is None:
            # (Training-mode single-token decode; the eval-mode equivalent
            # goes through raw_decode_row via TransformerLM._decode_step.)
            # Steady-state single-stream decode: collapse the (1, H, 1, ·)
            # batched matmuls to 2-D GEMV-shaped ops.  Same dot products and
            # the same stable-softmax elementwise sequence as the fused
            # kernel, just without the singleton batch dimensions.
            query2 = queries.reshape(heads, head_dim)
            keys3 = keys[0]  # (H, total, head_dim)
            values3 = values[0]
            scores = (keys3 @ query2[:, :, None])[:, :, 0]  # (H, total)
            scores *= scale
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            context = scores[:, None, :] @ values3  # (H, 1, head_dim)
            merged = context.reshape(1, 1, self.dim)
        else:
            context, _ = backend.scaled_dot_product_attention(
                queries, keys, values, scale, mask, dropout_mask
            )
            merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj.raw_forward(merged)

    def raw_decode_row(self, x: np.ndarray, cache: LayerKVCache, workspace, tag) -> np.ndarray:
        """Fused single-token attention step on a ``(dim,)`` row.

        Caller guarantees batch 1, one new position, no padding mask and inert
        dropout.  Projections are GEMVs into workspace buffers; the new
        key/value row is written straight into the cache's capacity buffers.
        """
        heads, head_dim = self.num_heads, self.head_dim
        dim = self.dim
        query = self.q_proj.project_row(x, workspace.get((tag, "q"), (dim,)))
        key = self.k_proj.project_row(x, workspace.get((tag, "k"), (dim,)))
        value = self.v_proj.project_row(x, workspace.get((tag, "v"), (dim,)))
        keys, values = cache.append_token(
            key.reshape(heads, head_dim), value.reshape(heads, head_dim)
        )
        keys3 = keys[0]  # (H, total, head_dim)
        values3 = values[0]
        query3 = query.reshape(heads, head_dim)
        scores = (keys3 @ query3[:, :, None])[:, :, 0]  # (H, total)
        scores *= 1.0 / np.sqrt(head_dim)
        scores -= np.maximum.reduce(scores, axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= np.add.reduce(scores, axis=-1, keepdims=True)
        context = scores[:, None, :] @ values3  # (H, 1, head_dim)
        return self.o_proj.project_row(
            context.reshape(dim), workspace.get((tag, "attn"), (dim,))
        )
