"""Causal multi-head self-attention.

The projection layers are named ``q_proj``, ``k_proj``, ``v_proj`` and
``o_proj`` to mirror the layer names the paper targets with LoRA ("the
trainable layers are the QKV layers (q_proj, k_proj, v_proj) and attention
output layer (o_proj)"), so the LoRA injection utilities can address them by
the same names.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention with a causal mask."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        rng = as_generator(rng)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.o_proj = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout_rate, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, T, D) -> (B, H, T, head_dim)."""
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, H, T, head_dim) -> (B, T, D)."""
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply causal self-attention.

        ``attention_mask`` is an optional boolean array of shape ``(B, T)``
        where ``False`` marks padding positions that must not be attended to.
        """
        batch, seq, _ = x.shape
        queries = self._split_heads(self.q_proj(x), batch, seq)
        keys = self._split_heads(self.k_proj(x), batch, seq)
        values = self._split_heads(self.v_proj(x), batch, seq)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = queries.matmul(keys.transpose(0, 1, 3, 2)) * scale

        causal = F.attention_scores_mask(seq)  # (T, T), True above diagonal
        mask = np.broadcast_to(causal, (batch, self.num_heads, seq, seq)).copy()
        if attention_mask is not None:
            padding = ~np.asarray(attention_mask, dtype=bool)  # True = padding
            mask |= padding[:, None, None, :]
            # A fully masked row (query at a padding position) would make softmax
            # degenerate; allow self-attention on the diagonal to keep it finite.
            diag = np.eye(seq, dtype=bool)[None, None, :, :]
            mask &= ~diag

        scores = scores.masked_fill(mask, -1e9)
        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        context = weights.matmul(values)
        merged = self._merge_heads(context, batch, seq)
        return self.o_proj(merged)
