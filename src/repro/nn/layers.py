"""Neural-network modules built on the autograd :class:`Tensor`.

The :class:`Module` base class provides recursive parameter discovery,
train/eval mode switching, and state-dict export/import; the concrete layers
are the minimum set needed by a decoder-only transformer: ``Linear``,
``Embedding``, ``LayerNorm``, ``Dropout`` and ``Sequential``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.backend import active as _active
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter / submodule discovery -------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(qualified_name, tensor)`` for every parameter, recursively."""
        for name, value in vars(self).items():
            qualified = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Tensor):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=qualified)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{index}")
                    elif isinstance(item, Tensor):
                        yield f"{qualified}.{index}", item

    def parameters(self) -> List[Tensor]:
        """All parameter tensors, recursively."""
        return [tensor for _, tensor in self.named_parameters()]

    def trainable_parameters(self) -> List[Tensor]:
        """Only parameters with ``requires_grad=True``."""
        return [tensor for tensor in self.parameters() if tensor.requires_grad]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule, depth-first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for tensor in self.parameters():
            tensor.grad = None

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        tensors = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(tensor.size for tensor in tensors))

    # -- training / evaluation mode -------------------------------------- #
    def train(self) -> "Module":
        """Switch this module (and submodules) to training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module (and submodules) to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # -- state dict -------------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by its qualified name."""
        return {name: tensor.data.copy() for name, tensor in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, tensor in own.items():
            array = np.asarray(state[name], dtype=tensor.data.dtype)
            if array.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {tensor.data.shape}, got {array.shape}"
                )
            tensor.data = array.copy()

    # -- call protocol ----------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transform ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(out_features, in_features)).astype(np.float32),
            requires_grad=True,
            name="weight",
        )
        if bias:
            self.bias: Optional[Tensor] = Tensor(
                np.zeros(out_features, dtype=np.float32), requires_grad=True, name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def raw_forward(self, x: np.ndarray) -> np.ndarray:
        """Array-level forward for the no-grad decode path (same kernel)."""
        out, _ = _active().linear(x, self.weight.data, None if self.bias is None else self.bias.data)
        return out

    def project_row(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Single-row forward ``W x (+ b)`` into a preallocated ``out`` buffer.

        Used by the fused single-token decode step: a GEMV into workspace
        memory instead of an allocating batched matmul.
        """
        np.dot(self.weight.data, x, out=out)
        if self.bias is not None:
            out += self.bias.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(
            (rng.standard_normal((num_embeddings, embedding_dim)) * 0.02).astype(np.float32),
            requires_grad=True,
            name="embedding",
        )

    def _validated(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={token_ids.min()}, max={token_ids.max()}"
            )
        return token_ids

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.weight.take_rows(self._validated(token_ids))

    def rows(self, token_ids: np.ndarray) -> np.ndarray:
        """Array-level lookup for the no-grad decode path (fresh copy)."""
        return self.weight.data[self._validated(token_ids)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True, name="ln_weight")
        self.bias = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True, name="ln_bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, rng=self._rng, training=self.training)

    def draw_mask(self, shape) -> Optional[np.ndarray]:
        """Pre-draw this layer's inverted-dropout multiplier for fused kernels.

        Returns ``None`` when dropout is inert (eval mode or rate 0), matching
        :meth:`forward`'s identity behaviour — crucially, no RNG draw happens
        in that case, so the random stream stays aligned with the composed
        path.
        """
        if not self.training or self.rate == 0.0:
            return None
        return F.draw_dropout_mask(shape, self.rate, self._rng)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class FeedForward(Module):
    """Position-wise feed-forward block: Linear → GELU → Linear (+dropout)."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.up = Linear(dim, hidden_dim, rng=rng)
        self.down = Linear(hidden_dim, dim, rng=rng)
        self.dropout = Dropout(dropout_rate, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.down(self.up(x).gelu()))
