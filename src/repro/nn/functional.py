"""Functional building blocks on top of :class:`repro.nn.tensor.Tensor`.

Each function here is a thin autograd wrapper over one fused kernel from the
active :mod:`repro.nn.backend`: the backend primitive computes the forward in
one or two vectorized calls and hands back residuals; a single backward
closure per kernel feeds those residuals to the backend's handwritten VJP.
This replaces the old per-op composition (5-15 chained Tensor micro-ops per
kernel) while keeping the numerics — log-sum-exp stability, ignore-index
masking — identical between the autograd path and the raw no-grad path,
because both call the *same* backend forward function.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.backend import active as _active
from repro.nn.tensor import Tensor, is_grad_enabled


def _recording(*tensors: Optional[Tensor]) -> bool:
    """True when grad mode is on and any of ``tensors`` requires grad."""
    if not is_grad_enabled():
        return False
    for tensor in tensors:
        if tensor is not None and tensor.requires_grad:
            return True
    return False


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    backend = _active()
    out, residuals = backend.softmax(x.data, axis)
    if not _recording(x):
        return Tensor(out)
    vjp = backend.VJPS["softmax"]

    def backward(grad: np.ndarray) -> None:
        x._accumulate_owned(vjp(residuals, grad))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    backend = _active()
    out, residuals = backend.log_softmax(x.data, axis)
    if not _recording(x):
        return Tensor(out)
    vjp = backend.VJPS["log_softmax"]

    def backward(grad: np.ndarray) -> None:
        x._accumulate_owned(vjp(residuals, grad))

    return Tensor._make(out, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Fused affine map ``x @ weight.T (+ bias)`` with one backward closure."""
    backend = _active()
    out, residuals = backend.linear(x.data, weight.data, None if bias is None else bias.data)
    if not _recording(x, weight, bias):
        return Tensor(out)
    vjp = backend.VJPS["linear"]
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        needs = (
            x.requires_grad,
            weight.requires_grad,
            bias is not None and bias.requires_grad,
        )
        grad_x, grad_w, grad_b = vjp(residuals, grad, needs)
        if grad_x is not None:
            x._accumulate_owned(grad_x)
        if grad_w is not None:
            weight._accumulate_owned(grad_w)
        if grad_b is not None:
            bias._accumulate_owned(grad_b)

    return Tensor._make(out, parents, backward)


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last dimension with affine parameters."""
    backend = _active()
    out, residuals = backend.layernorm(x.data, weight.data, bias.data, eps)
    if not _recording(x, weight, bias):
        return Tensor(out)
    vjp = backend.VJPS["layernorm"]

    def backward(grad: np.ndarray) -> None:
        needs = (x.requires_grad, weight.requires_grad, bias.requires_grad)
        grad_x, grad_w, grad_b = vjp(residuals, grad, needs)
        if grad_x is not None:
            x._accumulate_owned(grad_x)
        if grad_w is not None:
            weight._accumulate_owned(grad_w)
        if grad_b is not None:
            bias._accumulate_owned(grad_b)

    return Tensor._make(out, (x, weight, bias), backward)


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    scale: float,
    mask: Optional[np.ndarray] = None,
    dropout_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Fused attention kernel: ``softmax(mask(q k^T * scale)) (*dropout) @ v``.

    ``mask`` is a boolean array broadcastable to the score shape (True hides);
    ``dropout_mask`` a pre-drawn inverted-dropout multiplier (see
    :meth:`repro.nn.layers.Dropout.draw_mask`).
    """
    backend = _active()
    out, residuals = backend.scaled_dot_product_attention(
        q.data, k.data, v.data, scale, mask, dropout_mask
    )
    if not _recording(q, k, v):
        return Tensor(out)
    vjp = backend.VJPS["scaled_dot_product_attention"]

    def backward(grad: np.ndarray) -> None:
        needs = (q.requires_grad, k.requires_grad, v.requires_grad)
        grad_q, grad_k, grad_v = vjp(residuals, grad, needs)
        if grad_q is not None:
            q._accumulate_owned(grad_q)
        if grad_k is not None:
            k._accumulate_owned(grad_k)
        if grad_v is not None:
            v._accumulate_owned(grad_v)

    return Tensor._make(out, (q, k, v), backward)


def lora_matmul(
    x: Tensor,
    a: Tensor,
    b: Tensor,
    scaling: float,
    dropout_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Fused LoRA adapter delta ``scaling * (dropout(x) @ A^T @ B^T)``."""
    backend = _active()
    out, residuals = backend.lora_matmul(x.data, a.data, b.data, scaling, dropout_mask)
    if not _recording(x, a, b):
        return Tensor(out)
    vjp = backend.VJPS["lora_matmul"]

    def backward(grad: np.ndarray) -> None:
        needs = (x.requires_grad, a.requires_grad, b.requires_grad)
        grad_x, grad_a, grad_b = vjp(residuals, grad, needs)
        if grad_x is not None:
            x._accumulate_owned(grad_x)
        if grad_a is not None:
            a._accumulate_owned(grad_a)
        if grad_b is not None:
            b._accumulate_owned(grad_b)

    return Tensor._make(out, (x, a, b), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean token-level cross-entropy between ``logits`` and integer targets.

    ``logits`` has shape ``(..., vocab)`` and ``targets`` the matching leading
    shape.  Positions equal to ``ignore_index`` contribute neither to the loss
    nor to the gradient (used to mask padding tokens).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape != logits.data.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits {logits.data.shape[:-1]}"
        )
    backend = _active()
    loss, residuals = backend.cross_entropy(logits.data, targets, ignore_index)
    if not _recording(logits):
        return Tensor(loss)
    vjp = backend.VJPS["cross_entropy"]

    def backward(grad: np.ndarray) -> None:
        logits._accumulate_owned(vjp(residuals, grad))

    return Tensor._make(loss, (logits,), backward)


def draw_dropout_mask(
    shape, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Pre-drawn inverted-dropout multiplier (same draw as :func:`dropout`).

    Used by fused kernels that fold the dropout multiply into the kernel
    itself; drawing here keeps the RNG stream identical to the composed path.
    """
    keep_prob = 1.0 - rate
    return (rng.random(shape) < keep_prob).astype(np.float32) / keep_prob


def dropout(
    x: Tensor,
    rate: float,
    rng: Optional[np.random.Generator] = None,
    training: bool = True,
) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` of entries and rescale."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must lie in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng(0)
    keep_prob = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep_prob).astype(x.data.dtype) / keep_prob
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def attention_scores_mask(seq_len: int, past_len: int = 0) -> np.ndarray:
    """Boolean causal mask (True = positions to hide).

    Without ``past_len`` this is the usual square upper-triangular mask.  With
    ``past_len`` (KV-cached incremental decoding) the mask is rectangular,
    shape ``(seq_len, past_len + seq_len)``: query row ``i`` sits at global
    position ``past_len + i`` and may attend to every key at or before it.
    """
    total = past_len + seq_len
    return np.triu(np.ones((seq_len, total), dtype=bool), k=past_len + 1)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.data.dtype))
    return (diff * diff).mean()
