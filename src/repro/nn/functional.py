"""Functional building blocks on top of :class:`repro.nn.tensor.Tensor`.

These functions implement the numerically-sensitive operations (softmax,
log-softmax, layer normalization, cross-entropy, dropout) with hand-written
backward passes rather than composing primitive ops, so that forward values
stay stable (log-sum-exp trick) and the backward pass stays cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # d softmax = s * (grad - sum(grad * s))
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_sum = grad.sum(axis=axis, keepdims=True)
            x._accumulate(grad - softmax_data * grad_sum)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last dimension with affine parameters."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = (x.data - mean) * inv_std
    out_data = normalized * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        dim = x.data.shape[-1]
        if weight.requires_grad:
            weight._accumulate((grad * normalized).reshape(-1, dim).sum(axis=0))
        if bias.requires_grad:
            bias._accumulate(grad.reshape(-1, dim).sum(axis=0))
        if x.requires_grad:
            grad_norm = grad * weight.data
            grad_mean = grad_norm.mean(axis=-1, keepdims=True)
            grad_dot = (grad_norm * normalized).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (grad_norm - grad_mean - normalized * grad_dot))

    return Tensor._make(out_data, (x, weight, bias), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean token-level cross-entropy between ``logits`` and integer targets.

    ``logits`` has shape ``(..., vocab)`` and ``targets`` the matching leading
    shape.  Positions equal to ``ignore_index`` contribute neither to the loss
    nor to the gradient (used to mask padding tokens).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape != logits.data.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits {logits.data.shape[:-1]}"
        )
    vocab = logits.data.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    valid_count = int(valid.sum())
    if valid_count == 0:
        raise ValueError("cross_entropy received no valid target positions")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp

    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss_value = -(picked * valid).sum() / valid_count

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        grad_flat = probs
        grad_flat[np.arange(flat_targets.size), safe_targets] -= 1.0
        grad_flat *= valid[:, None]
        grad_flat *= float(grad) / valid_count
        logits._accumulate(grad_flat.reshape(logits.data.shape))

    return Tensor._make(np.asarray(loss_value, dtype=logits.data.dtype), (logits,), backward)


def dropout(
    x: Tensor,
    rate: float,
    rng: Optional[np.random.Generator] = None,
    training: bool = True,
) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` of entries and rescale."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must lie in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng(0)
    keep_prob = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep_prob).astype(x.data.dtype) / keep_prob
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def attention_scores_mask(seq_len: int, past_len: int = 0) -> np.ndarray:
    """Boolean causal mask (True = positions to hide).

    Without ``past_len`` this is the usual square upper-triangular mask.  With
    ``past_len`` (KV-cached incremental decoding) the mask is rectangular,
    shape ``(seq_len, past_len + seq_len)``: query row ``i`` sits at global
    position ``past_len + i`` and may attend to every key at or before it.
    """
    total = past_len + seq_len
    return np.triu(np.ones((seq_len, total), dtype=bool), k=past_len + 1)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.data.dtype))
    return (diff * diff).mean()
