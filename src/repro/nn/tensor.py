"""A small reverse-mode automatic-differentiation engine over numpy arrays.

This is the computational substrate for the on-device LLM used throughout the
reproduction.  It follows the usual define-by-run design: every operation on a
:class:`Tensor` records a backward closure and its parent tensors; calling
:meth:`Tensor.backward` runs a topological sweep that accumulates gradients
into ``tensor.grad`` for every tensor created with ``requires_grad=True``.

Only the operations needed by a decoder-only transformer with LoRA adapters
are implemented, but each is implemented with full broadcasting support so the
layers above can be written naturally.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.backend import active as _backend_active

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float32
_GELU_C = float(np.sqrt(2.0 / np.pi))

# Sentinel marking a backward closure already consumed by a backward() sweep
# (the graph is freed as the sweep walks it unless retain_graph=True).
_CONSUMED = object()

# Per-thread autograd switch.  When False (inside ``inference_mode()``) no
# operation records a backward closure or parent tuple, so forward passes
# allocate no tape at all — the fast path used by generation and evaluation.
# Thread-local because serving runs schedulers on worker threads (the socket
# front-end's bridge, thread-mode shard workers): one worker decoding inside
# ``inference_mode()`` must not switch off a neighbour's training tape.
class _GradState(threading.local):
    enabled = True


_GRAD_STATE = _GradState()


def is_grad_enabled() -> bool:
    """Whether operations currently record the autodiff graph (this thread)."""
    return _GRAD_STATE.enabled


@contextmanager
def inference_mode() -> Iterator[None]:
    """Context manager disabling all graph recording (current thread only).

    Inside the context every op produces plain ``requires_grad=False`` tensors
    with no parents and no backward closure, regardless of the inputs'
    ``requires_grad`` flags.  Forward values are computed with exactly the
    same arithmetic, so results are numerically identical to the default
    mode — only the tape (and its memory / closure overhead) is skipped.
    Nesting is supported; the previous state is restored on exit.
    """
    previous = _GRAD_STATE.enabled
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    """Coerce python scalars / lists / arrays into a float numpy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, the gradient
    flowing back has the broadcast shape; summing over the broadcast axes
    recovers the gradient w.r.t. the original operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single scalar value held by this tensor."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new tensor sharing data but outside the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    # ------------------------------------------------------------------ #
    # graph plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the graph if any parent needs grad.

        Inside :func:`inference_mode` nothing is ever wired: the result is a
        plain constant tensor and the backward closure is dropped.
        """
        requires = _GRAD_STATE.enabled and any(parent.requires_grad for parent in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (allocating on first use)."""
        grad = _unbroadcast(_as_array(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient array this tensor may take ownership of.

        Backend VJPs return freshly allocated arrays shaped exactly like the
        input, so the first accumulation can steal the buffer instead of
        copying it (the copy in :meth:`_accumulate` guards against aliasing
        shared upstream grads, which cannot happen here).
        """
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None, retain_graph: bool = False) -> None:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (a scalar loss is the common case).  Unless
        ``retain_graph=True``, backward closures and parent links are released
        as the sweep consumes them, so intermediate activations and residuals
        become collectable immediately; a second ``backward()`` through the
        same graph raises :class:`RuntimeError`.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Iterative post-order topo sort.  A recursive closure would both hit
        # the recursion limit on deep graphs and form a self-referential cycle
        # (the helper captures itself), leaving each step's entire graph to
        # the cyclic collector — which shows up as multi-megabyte garbage and
        # visible slowdowns in training loops.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            backward_fn = node._backward
            if backward_fn is _CONSUMED:
                raise RuntimeError(
                    "backward() through a graph that has already been freed; "
                    "pass retain_graph=True to the first backward() call to "
                    "back-propagate through it more than once"
                )
            if backward_fn is None or node.grad is None:
                continue
            backward_fn(node.grad)
        for node in topo:
            if node._backward is not None:
                # Interior grads were consumed by the sweep; clearing them
                # releases the buffers and keeps a later backward (with
                # retain_graph=True) from double-counting stale values.
                node.grad = None
                if not retain_graph:
                    node._backward = _CONSUMED
                    node._parents = ()

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # matrix multiply
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting batched left operands (``... x m x k``)."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other_t.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other_t._accumulate(_unbroadcast(grad_other, other_t.data.shape))

        return Tensor._make(data, (self, other_t), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """GELU with the tanh approximation used by GPT-style models."""
        backend = _backend_active()
        data, residuals = backend.gelu(self.data)
        if not (_GRAD_STATE.enabled and self.requires_grad):
            return Tensor(data)
        vjp = backend.VJPS["gelu"]

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(vjp(residuals, grad))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape manipulation
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    expanded = np.expand_dims(expanded, a)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            maxval = data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
                maxval = np.expand_dims(maxval, axis)
            mask = (self.data == maxval).astype(self.data.dtype)
            # Split gradient evenly between ties, mirroring numpy-style subgradients.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(expanded * mask / np.maximum(denom, 1.0))

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        # Inverse permutation, computed without numpy (hot path: one call per
        # transpose, and np.argsort on a tiny tuple costs more than the op).
        inverse = [0] * len(axes)
        for position, axis in enumerate(axes):
            inverse[axis % self.data.ndim] = position
        inverse = tuple(inverse)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (used by :class:`~repro.nn.layers.Embedding`).

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (row_dim,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (no grad there)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, np.asarray(value, dtype=self.data.dtype), self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape: Tuple[int, ...],
        rng: Optional[np.random.Generator] = None,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng(0)
        data = rng.standard_normal(shape).astype(_DEFAULT_DTYPE) * scale
        return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot concatenate an empty list of tensors")
    data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
    sizes = [tensor.data.shape[axis] for tensor in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer: list = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing back to each."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot stack an empty list of tensors")
    data = np.stack([tensor.data for tensor in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        split = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, split):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(data, tuple(tensors), backward)


def no_grad_parameters(tensors: Iterable[Tensor]) -> None:
    """Mark a collection of tensors as frozen (``requires_grad=False``)."""
    for tensor in tensors:
        tensor.requires_grad = False
        tensor.grad = None
