"""Pluggable array backends for the ``repro.nn`` stack.

A *backend* is a module of fused primitive operations — ``matmul``,
``linear``, ``softmax``, ``layernorm``, ``gelu``,
``scaled_dot_product_attention``, ``cross_entropy``, ``lora_matmul``,
``adamw_step`` — each implemented as one or two vectorized array calls with a
handwritten vector-Jacobian product (VJP) registered in the backend's
``VJPS`` table.  The layers in :mod:`repro.nn` call these primitives for
their hot kernels instead of composing 5–15 chained :class:`~repro.nn.tensor.
Tensor` micro-ops, so a forward+backward pass allocates one backward closure
per *kernel* rather than per *arithmetic op* (the HIPS-autograd idiom).

Backend contract
----------------
A backend module must expose:

``name``
    The backend's registry name (string).
``PRIMITIVES``
    Mapping of primitive name → forward callable.  Every forward takes plain
    arrays (never Tensors) and returns ``(out, residuals)`` where
    ``residuals`` is whatever the VJP needs.
``VJPS``
    Mapping of primitive name → VJP callable.  Single-input primitives have
    signature ``vjp(residuals, grad) -> grad_in``; multi-input primitives
    take a ``needs`` tuple of booleans and return one gradient (or ``None``)
    per differentiable input.  Returned gradient arrays are freshly
    allocated, shaped exactly like the corresponding input, and owned by the
    caller (safe to accumulate into in place).
``Workspace``
    A preallocated scratch arena (see :class:`numpy_backend.Workspace`);
    steady-state loops reuse its buffers so hot paths run allocation-free.

Forward arithmetic must be identical between a backend's use on the autograd
path and on the raw no-grad path — :mod:`repro.nn` relies on this to keep
``inference_mode()`` outputs bit-equal to default-mode outputs.

Selection
---------
The active backend defaults to ``numpy`` and can be chosen with the
``REPRO_BACKEND`` environment variable (read once, at first use) or
programmatically with :func:`set_backend`.  Additional backends (numba,
CuPy, ...) register a lazy loader via :func:`register_backend` and slot in
without touching the layers above.
"""

from __future__ import annotations

import importlib
import os
from typing import Callable, Dict, List

ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "numpy"

# name -> zero-arg loader returning the backend module.  Lazy so importing
# repro.nn does not pay for backends that are never selected (a CuPy backend
# must not import cupy unless asked for).
_LOADERS: Dict[str, Callable[[], object]] = {
    "numpy": lambda: importlib.import_module("repro.nn.backend.numpy_backend"),
}
_active = None


def register_backend(name: str, loader: Callable[[], object]) -> None:
    """Register ``loader`` (a zero-arg callable returning a backend module)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _LOADERS[name] = loader


def available_backends() -> List[str]:
    """Names of every registered backend."""
    return sorted(_LOADERS)


def get_backend(name: str):
    """Load and return the backend registered under ``name``."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise RuntimeError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return loader()


def set_backend(name: str):
    """Make ``name`` the active backend; returns the previous active module."""
    global _active
    previous = _active
    _active = get_backend(name)
    return previous


def active():
    """The active backend module (resolving ``REPRO_BACKEND`` on first use)."""
    global _active
    if _active is None:
        _active = get_backend(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _active
