"""The default numpy backend: fused kernels with handwritten VJPs.

Every primitive is one or two vectorized numpy calls plus in-place follow-ups
on freshly allocated arrays.  Forwards return ``(out, residuals)``; the
matching VJP in :data:`VJPS` turns an output gradient into input gradients
using only the saved residuals (never the autograd graph).  All returned
gradient arrays are freshly allocated and owned by the caller.

The same forward functions serve both the autograd path (wrapped by
:mod:`repro.nn.functional`) and the raw no-grad decode path
(:meth:`repro.nn.transformer.TransformerLM.forward` in inference mode), which
is what keeps the two paths bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

name = "numpy"

_GELU_C = float(np.sqrt(2.0 / np.pi))
_GELU_A = 0.044715

PRIMITIVES: Dict[str, object] = {}
VJPS: Dict[str, object] = {}


def _primitive(fn):
    PRIMITIVES[fn.__name__] = fn
    return fn


def _vjp(primitive_name):
    def register(fn):
        VJPS[primitive_name] = fn
        return fn

    return register


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast axes so it has ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# --------------------------------------------------------------------------- #
# matmul
# --------------------------------------------------------------------------- #
@_primitive
def matmul(a: np.ndarray, b: np.ndarray):
    """Batched matrix product ``a @ b``."""
    return a @ b, (a, b)


@_vjp("matmul")
def matmul_vjp(res, grad, needs):
    a, b = res
    need_a, need_b = needs
    grad_a = grad_b = None
    if need_a:
        grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
    if need_b:
        grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
    return grad_a, grad_b


# --------------------------------------------------------------------------- #
# linear: x @ W^T + b in one kernel
# --------------------------------------------------------------------------- #
@_primitive
def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]):
    """Affine map ``x @ W^T (+ b)``; ``W`` is ``(out, in)``, ``x`` ``(..., in)``."""
    out = x @ weight.T
    if bias is not None:
        out += bias
    return out, (x, weight)


@_vjp("linear")
def linear_vjp(res, grad, needs):
    x, weight = res
    need_x, need_w, need_b = needs
    grad_x = grad_w = grad_b = None
    if need_x:
        grad_x = grad @ weight
    if need_w or need_b:
        grad2 = grad.reshape(-1, grad.shape[-1])
        if need_w:
            grad_w = grad2.T @ x.reshape(-1, x.shape[-1])
        if need_b:
            grad_b = grad2.sum(axis=0)
    return grad_x, grad_w, grad_b


# --------------------------------------------------------------------------- #
# softmax / log-softmax
# --------------------------------------------------------------------------- #
@_primitive
def softmax(x: np.ndarray, axis: int = -1):
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    out = shifted
    out /= out.sum(axis=axis, keepdims=True)
    return out, (out, axis)


@_vjp("softmax")
def softmax_vjp(res, grad):
    out, axis = res
    dot = (grad * out).sum(axis=axis, keepdims=True)
    result = grad - dot
    result *= out
    return result


@_primitive
def log_softmax(x: np.ndarray, axis: int = -1):
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    shifted -= logsumexp
    return shifted, (np.exp(shifted), axis)


@_vjp("log_softmax")
def log_softmax_vjp(res, grad):
    softmax_data, axis = res
    grad_sum = grad.sum(axis=axis, keepdims=True)
    return grad - softmax_data * grad_sum


# --------------------------------------------------------------------------- #
# layer normalization
# --------------------------------------------------------------------------- #
@_primitive
def layernorm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5):
    """LayerNorm over the last axis with affine parameters."""
    # np.add.reduce + divide is what ndarray.mean does internally, minus a
    # few microseconds of Python dispatch that dominate on decode-sized rows.
    dim = x.shape[-1]
    mean = np.add.reduce(x, axis=-1, keepdims=True)
    mean /= dim
    centered = x - mean
    var = np.add.reduce(np.square(centered), axis=-1, keepdims=True)
    var /= dim
    var += eps
    inv_std = 1.0 / np.sqrt(var)
    normalized = centered
    normalized *= inv_std
    out = normalized * weight
    out += bias
    return out, (normalized, inv_std, weight)


@_vjp("layernorm")
def layernorm_vjp(res, grad, needs):
    normalized, inv_std, weight = res
    need_x, need_w, need_b = needs
    grad_x = grad_w = grad_b = None
    dim = normalized.shape[-1]
    if need_w:
        grad_w = (grad * normalized).reshape(-1, dim).sum(axis=0)
    if need_b:
        grad_b = grad.reshape(-1, dim).sum(axis=0)
    if need_x:
        grad_norm = grad * weight
        grad_mean = grad_norm.mean(axis=-1, keepdims=True)
        grad_dot = (grad_norm * normalized).mean(axis=-1, keepdims=True)
        grad_x = grad_norm
        grad_x -= grad_mean
        grad_x -= normalized * grad_dot
        grad_x *= inv_std
    return grad_x, grad_w, grad_b


# --------------------------------------------------------------------------- #
# GELU (tanh approximation)
# --------------------------------------------------------------------------- #
@_primitive
def gelu(x: np.ndarray):
    """GELU with the tanh approximation used by GPT-style models."""
    inner = x * x
    inner *= x  # x^3 without the generic-pow loop
    inner *= _GELU_A
    inner += x
    inner *= _GELU_C
    t = np.tanh(inner)
    out = x * t
    out += x
    out *= 0.5  # 0.5 * (x + x*t) == 0.5 * x * (1 + t)
    return out, (x, t)


@_vjp("gelu")
def gelu_vjp(res, grad):
    x, t = res
    # d/dx [0.5 x (1+t)] = 0.5(1+t) + 0.5 x (1-t^2) C (1 + 3A x^2)
    local = x * x
    local *= 3.0 * _GELU_A
    local += 1.0
    local *= _GELU_C
    one_minus_t2 = t * t
    np.subtract(1.0, one_minus_t2, out=one_minus_t2)
    local *= one_minus_t2
    local *= x
    local += 1.0
    local += t
    local *= 0.5  # 0.5*(1 + t) + 0.5*x*dt
    local *= grad
    return local


# --------------------------------------------------------------------------- #
# scaled dot-product attention
# --------------------------------------------------------------------------- #
@_primitive
def scaled_dot_product_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float,
    mask: Optional[np.ndarray] = None,
    dropout_mask: Optional[np.ndarray] = None,
):
    """Fused attention: softmax(mask(q k^T * scale)) (*dropout) @ v.

    ``q`` is ``(..., Tq, d)``, ``k``/``v`` ``(..., Tk, d)``; ``mask`` is a
    boolean array broadcastable to the score shape where True hides a
    position; ``dropout_mask`` is a pre-drawn inverted-dropout multiplier.
    """
    scores = q @ np.swapaxes(k, -1, -2)
    scores *= scale
    if mask is not None:
        scores[mask] = -1e9
    shifted = scores
    shifted -= shifted.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    weights = shifted
    weights /= weights.sum(axis=-1, keepdims=True)
    if dropout_mask is not None:
        dropped = weights * dropout_mask
    else:
        dropped = weights
    out = dropped @ v
    return out, (q, k, v, weights, dropped, mask, dropout_mask, scale)


@_vjp("scaled_dot_product_attention")
def scaled_dot_product_attention_vjp(res, grad, needs):
    q, k, v, weights, dropped, mask, dropout_mask, scale = res
    need_q, need_k, need_v = needs
    grad_q = grad_k = grad_v = None
    if need_v:
        grad_v = np.swapaxes(dropped, -1, -2) @ grad
    if need_q or need_k:
        grad_weights = grad @ np.swapaxes(v, -1, -2)
        if dropout_mask is not None:
            grad_weights *= dropout_mask
        dot = (grad_weights * weights).sum(axis=-1, keepdims=True)
        grad_scores = grad_weights
        grad_scores -= dot
        grad_scores *= weights
        if mask is not None:
            grad_scores[mask] = 0.0
        grad_scores *= scale
        if need_q:
            grad_q = grad_scores @ k
        if need_k:
            grad_k = np.swapaxes(grad_scores, -1, -2) @ q
    return grad_q, grad_k, grad_v


# --------------------------------------------------------------------------- #
# cross-entropy
# --------------------------------------------------------------------------- #
@_primitive
def cross_entropy(logits: np.ndarray, targets: np.ndarray, ignore_index: Optional[int] = None):
    """Mean token-level cross-entropy; ``ignore_index`` positions are masked.

    ``logits`` is ``(..., vocab)``; ``targets`` the matching integer leading
    shape.  Raises :class:`ValueError` when no valid target remains.
    """
    targets = np.asarray(targets, dtype=np.int64)
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    valid_count = int(valid.sum())
    if valid_count == 0:
        raise ValueError("cross_entropy received no valid target positions")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted
    log_probs -= logsumexp

    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss = -(picked * valid).sum() / valid_count
    loss = np.asarray(loss, dtype=logits.dtype)
    return loss, (log_probs, valid, safe_targets, valid_count, logits.shape)


@_vjp("cross_entropy")
def cross_entropy_vjp(res, grad):
    log_probs, valid, safe_targets, valid_count, shape = res
    grad_flat = np.exp(log_probs)
    grad_flat[np.arange(safe_targets.size), safe_targets] -= 1.0
    grad_flat *= valid[:, None]
    grad_flat *= float(grad) / valid_count
    return grad_flat.reshape(shape)


# --------------------------------------------------------------------------- #
# LoRA adapter matmul
# --------------------------------------------------------------------------- #
@_primitive
def lora_matmul(
    x: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    scaling: float,
    dropout_mask: Optional[np.ndarray] = None,
):
    """Fused adapter delta ``scaling * ((dropout(x)) @ A^T @ B^T)``.

    ``a`` is ``(rank, in)``, ``b`` ``(out, rank)``; ``dropout_mask`` is a
    pre-drawn inverted-dropout multiplier for ``x`` (or None).
    """
    if dropout_mask is not None:
        dropped = x * dropout_mask
    else:
        dropped = x
    mid = dropped @ a.T
    out = mid @ b.T
    out *= scaling
    return out, (dropped, mid, a, b, scaling, dropout_mask)


@_vjp("lora_matmul")
def lora_matmul_vjp(res, grad, needs):
    dropped, mid, a, b, scaling, dropout_mask = res
    need_x, need_a, need_b = needs
    grad_x = grad_a = grad_b = None
    grad_out = grad * scaling
    if need_b:
        grad_b = grad_out.reshape(-1, grad_out.shape[-1]).T @ mid.reshape(-1, mid.shape[-1])
    if need_x or need_a:
        grad_mid = grad_out @ b
        if need_a:
            grad_a = grad_mid.reshape(-1, grad_mid.shape[-1]).T @ dropped.reshape(
                -1, dropped.shape[-1]
            )
        if need_x:
            grad_x = grad_mid @ a
            if dropout_mask is not None:
                grad_x *= dropout_mask
    return grad_x, grad_a, grad_b


# --------------------------------------------------------------------------- #
# fused optimizer step (no VJP: mutates state in place)
# --------------------------------------------------------------------------- #
@_primitive
def adamw_step(
    param: np.ndarray,
    grad: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    scratch_a: np.ndarray,
    scratch_b: np.ndarray,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    weight_decay: float,
    bias1: float,
    bias2: float,
):
    """One AdamW update, fully in place using two preallocated scratch buffers.

    Implements exactly the textbook sequence (decoupled weight decay)::

        m = b1*m + (1-b1)*g;  v = b2*v + (1-b2)*g*g
        p -= lr * (m/bias1 / (sqrt(v/bias2) + eps) + wd*p)

    ``scratch_a``/``scratch_b`` must match ``param``'s shape and dtype; they
    hold the intermediate products so the steady-state step allocates nothing.
    """
    m *= beta1
    np.multiply(grad, 1.0 - beta1, out=scratch_a)
    m += scratch_a
    v *= beta2
    np.multiply(grad, 1.0 - beta2, out=scratch_a)
    scratch_a *= grad
    v += scratch_a
    np.divide(m, bias1, out=scratch_a)  # m_hat
    np.divide(v, bias2, out=scratch_b)  # v_hat
    np.sqrt(scratch_b, out=scratch_b)
    scratch_b += eps
    scratch_a /= scratch_b  # m_hat / (sqrt(v_hat) + eps)
    if weight_decay:
        np.multiply(param, weight_decay, out=scratch_b)
        scratch_a += scratch_b
    scratch_a *= lr
    param -= scratch_a
    return param, None


# --------------------------------------------------------------------------- #
# row kernels (single-token decode fast path)
# --------------------------------------------------------------------------- #
def layernorm_row(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float, out: np.ndarray
) -> np.ndarray:
    """LayerNorm of a single ``(dim,)`` row into the preallocated ``out``.

    Statistics are computed as Python floats (numpy scalar arithmetic costs
    ~0.5µs per op, which dominates at decode row sizes).  The variance uses
    an SDOT reduction, so the result can differ from the batched kernel by
    ~1 ulp — the same order as the GEMV-vs-GEMM difference the decode path
    already accepts, and far inside the decode-equivalence tolerance.
    """
    dim = x.shape[0]
    mean = float(np.add.reduce(x)) / dim
    np.subtract(x, mean, out=out)
    var = float(np.dot(out, out)) / dim
    out *= 1.0 / math.sqrt(var + eps)
    out *= weight
    out += bias
    return out


# --------------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------------- #
def grad_norm_sq(grads) -> float:
    """Single-pass, copy-free sum of squared L2 norms (float64 accumulation).

    ``np.einsum`` with an explicit float64 ``dtype`` upcasts inside its
    buffered inner loop — no ``astype`` copy of the gradient is ever made.
    """
    total = 0.0
    for grad in grads:
        flat = np.ravel(grad)
        total += float(np.einsum("i,i->", flat, flat, dtype=np.float64))
    return total


# --------------------------------------------------------------------------- #
# workspace arena
# --------------------------------------------------------------------------- #
class Workspace:
    """Preallocated scratch buffers keyed by a caller-chosen tag.

    ``get(tag, shape, dtype)`` returns the cached buffer for ``tag`` when its
    shape/dtype still match, allocating (and remembering) a new one
    otherwise.  Steady-state loops whose shapes repeat — single-token decode,
    fixed-batch fine-tune steps — therefore stop allocating after the first
    iteration.  Buffers contain stale data; callers must fully overwrite.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[object, np.ndarray] = {}

    def get(self, tag, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        buffer = self._buffers.get(tag)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[tag] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    def nbytes(self) -> int:
        return int(sum(buffer.nbytes for buffer in self._buffers.values()))
