"""Optimizers and learning-rate schedules.

AdamW is the optimizer the paper fine-tunes with; SGD and Adam are provided
for the pre-training utility and ablations.  The ``sqrt_batch_scaled_lr``
helper reproduces the learning-rate ∝ √batch-size scaling rule the paper
applies in the buffer-size experiment (Table 3).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from repro.nn.backend import active as _active
from repro.nn.tensor import Tensor
from repro.utils.config import require_non_negative, require_positive


class Optimizer:
    """Base class holding parameters and the current learning rate."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        require_positive("lr", lr)
        self.parameters: List[Tensor] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)
        self._step_count = 0

    @property
    def step_count(self) -> int:
        """Number of optimization steps taken so far."""
        return self._step_count

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by schedulers)."""
        require_positive("lr", lr)
        self.lr = float(lr)

    # -- serialization ---------------------------------------------------- #
    def state_dict(self) -> dict:
        """Picklable snapshot of the optimizer state (not the parameters).

        Subclasses extend this with their moment/velocity buffers; together
        with the model state dict it makes mid-run training restartable.
        """
        return {"lr": self.lr, "step_count": self._step_count}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        The optimizer must manage the same number of parameters, with the
        same shapes and in the same order, as when the snapshot was taken.
        """
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        self._load_buffers(state)

    def _load_buffers(self, state: dict) -> None:
        """Hook for subclasses to restore their per-parameter buffers."""

    def _check_buffers(self, name: str, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state mismatch: {len(buffers)} {name} buffers for "
                f"{len(self.parameters)} parameters"
            )
        restored = []
        for buffer, parameter in zip(buffers, self.parameters):
            array = np.asarray(buffer)
            if array.shape != parameter.data.shape:
                raise ValueError(
                    f"optimizer {name} buffer shape {array.shape} does not match "
                    f"parameter shape {parameter.data.shape}"
                )
            restored.append(array.copy())
        return restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        require_non_negative("momentum", momentum)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += parameter.grad
                update = velocity
            else:
                update = parameter.grad
            parameter.data = parameter.data - self.lr * update

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def _load_buffers(self, state: dict) -> None:
        self._velocity = self._check_buffers("velocity", state["velocity"])


class Adam(Optimizer):
    """Adam with bias correction (no weight decay)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._workspace = _active().Workspace()

    def step(self) -> None:
        self._step_count += 1
        backend = _active()
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, (parameter, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if parameter.grad is None:
                continue
            scratch_a = self._workspace.get(
                ("a", index), parameter.data.shape, parameter.data.dtype
            )
            scratch_b = self._workspace.get(
                ("b", index), parameter.data.shape, parameter.data.dtype
            )
            backend.adamw_step(
                parameter.data, parameter.grad, m, v, scratch_a, scratch_b,
                self.lr, self.beta1, self.beta2, self.eps, 0.0, bias1, bias2,
            )

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def _load_buffers(self, state: dict) -> None:
        self._m = self._check_buffers("m", state["m"])
        self._v = self._check_buffers("v", state["v"])


class AdamW(Optimizer):
    """Adam with decoupled weight decay (the paper's fine-tuning optimizer)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr)
        require_non_negative("weight_decay", weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._workspace = _active().Workspace()

    def step(self) -> None:
        self._step_count += 1
        backend = _active()
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, (parameter, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if parameter.grad is None:
                continue
            scratch_a = self._workspace.get(
                ("a", index), parameter.data.shape, parameter.data.dtype
            )
            scratch_b = self._workspace.get(
                ("b", index), parameter.data.shape, parameter.data.dtype
            )
            # Decoupled weight decay is folded into the fused kernel.
            backend.adamw_step(
                parameter.data, parameter.grad, m, v, scratch_a, scratch_b,
                self.lr, self.beta1, self.beta2, self.eps, self.weight_decay, bias1, bias2,
            )

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def _load_buffers(self, state: dict) -> None:
        self._m = self._check_buffers("m", state["m"])
        self._v = self._check_buffers("v", state["v"])


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm.

    The squared norm is reduced in a single pass with float64 accumulation but
    without materialising a float64 copy of any gradient (the old
    ``grad.astype(np.float64) ** 2`` doubled peak gradient memory).
    """
    require_positive("max_norm", max_norm)
    grads = [p.grad for p in parameters if p.grad is not None]
    norm = math.sqrt(_active().grad_norm_sq(grads))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class LRScheduler:
    """Base learning-rate schedule driving an :class:`Optimizer`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self._epoch += 1
        lr = self.lr_at(self._epoch)
        self.optimizer.set_lr(lr)
        return lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRScheduler):
    """Keeps the base learning rate unchanged (the paper's default)."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class CosineDecayLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-6) -> None:
        super().__init__(optimizer)
        require_positive("total_epochs", total_epochs)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class LinearWarmupLR(LRScheduler):
    """Linear warm-up to the base LR over ``warmup_epochs``, then constant."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        super().__init__(optimizer)
        require_positive("warmup_epochs", warmup_epochs)
        self.warmup_epochs = warmup_epochs

    def lr_at(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * (epoch / self.warmup_epochs)


def sqrt_batch_scaled_lr(
    base_lr: float, base_batch_size: int, batch_size: int
) -> float:
    """Scale the learning rate with the square root of the batch size.

    Reproduces the rule the paper applies when sweeping buffer sizes in
    Table 3 ("learning rate ∝ √batch size"): the learning rate used for a
    buffer of ``batch_size`` items is ``base_lr * sqrt(batch/base_batch)``.
    """
    require_positive("base_lr", base_lr)
    require_positive("base_batch_size", base_batch_size)
    require_positive("batch_size", batch_size)
    return base_lr * math.sqrt(batch_size / base_batch_size)
