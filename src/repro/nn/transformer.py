"""Decoder-only transformer language model.

This is the on-device LLM stand-in for Llama-3B: the architecture family is
the same (token + positional embeddings, pre-LayerNorm decoder blocks with
causal multi-head self-attention and a GELU feed-forward, a final LayerNorm
and an output projection), only the size is scaled down so it trains and
fine-tunes in seconds on CPU.  The framework under test uses it through three
interfaces — next-token logits, last-hidden-layer embeddings, and LoRA
fine-tuning — each of which is exercised exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.attention import LayerKVCache, MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, FeedForward, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, inference_mode
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


class KVCache:
    """Per-layer key/value caches for incremental decoding.

    One :class:`~repro.nn.attention.LayerKVCache` per decoder block; the
    model-level ``length`` is the number of context positions already encoded.
    The cache stores raw arrays (no autograd graph) and is intended for use
    inside :func:`repro.nn.inference_mode`.
    """

    def __init__(self, num_layers: int) -> None:
        require_positive("num_layers", num_layers)
        self.layers = [LayerKVCache() for _ in range(num_layers)]

    @property
    def length(self) -> int:
        """Number of cached context positions."""
        return self.layers[0].length

    def reset(self) -> None:
        """Invalidate the cache (e.g. when the context window slides)."""
        for layer in self.layers:
            layer.reset()


@dataclass
class TransformerConfig:
    """Hyper-parameters of the decoder-only transformer."""

    vocab_size: int = 512
    max_seq_len: int = 64
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_multiplier: int = 4
    dropout_rate: float = 0.0
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        require_positive("vocab_size", self.vocab_size)
        require_positive("max_seq_len", self.max_seq_len)
        require_positive("dim", self.dim)
        require_positive("num_layers", self.num_layers)
        require_positive("num_heads", self.num_heads)
        require_positive("ffn_multiplier", self.ffn_multiplier)
        if self.dim % self.num_heads != 0:
            raise ValueError(
                f"dim ({self.dim}) must be divisible by num_heads ({self.num_heads})"
            )
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError(f"dropout_rate must lie in [0, 1), got {self.dropout_rate}")


class TransformerBlock(Module):
    """Pre-LayerNorm decoder block: LN → attention → residual, LN → FFN → residual."""

    def __init__(self, config: TransformerConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.ln_attn = LayerNorm(config.dim)
        self.attention = MultiHeadSelfAttention(
            config.dim, config.num_heads, dropout_rate=config.dropout_rate, rng=rng
        )
        self.ln_ffn = LayerNorm(config.dim)
        self.ffn = FeedForward(
            config.dim,
            config.dim * config.ffn_multiplier,
            dropout_rate=config.dropout_rate,
            rng=rng,
        )

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        cache: Optional[LayerKVCache] = None,
    ) -> Tensor:
        x = x + self.attention(self.ln_attn(x), attention_mask=attention_mask, cache=cache)
        x = x + self.ffn(self.ln_ffn(x))
        return x


class TransformerLM(Module):
    """Decoder-only causal language model returning logits and hidden states."""

    def __init__(self, config: TransformerConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng=rng)
        self.embedding_dropout = Dropout(config.dropout_rate, rng=rng)
        self.blocks = [TransformerBlock(config, rng=rng) for _ in range(config.num_layers)]
        self.ln_final = LayerNorm(config.dim)
        if config.tie_embeddings:
            self.lm_head: Optional[Linear] = None
        else:
            self.lm_head = Linear(config.dim, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------ #
    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        return_hidden: bool = False,
        kv_cache: Optional[KVCache] = None,
        position_ids: Optional[np.ndarray] = None,
    ):
        """Compute next-token logits for a batch of token-id sequences.

        Parameters
        ----------
        token_ids:
            Integer array of shape ``(batch, seq)``.
        attention_mask:
            Optional boolean array; ``False`` marks padding positions.  Shape
            ``(batch, seq)`` without a cache, ``(batch, past + seq)`` with one.
        return_hidden:
            When True, also return the final-LayerNorm hidden states
            ``(batch, seq, dim)`` — the "last hidden layer" the paper uses as
            the text-embedding function.
        kv_cache:
            Optional :class:`KVCache` for incremental decoding.  ``token_ids``
            then holds only the positions not yet encoded; their keys/values
            are appended to the cache and positions continue from its length.
        position_ids:
            Optional explicit positions of shape ``(batch, seq)``, used by
            left-padded batched decoding where each row starts at its own
            offset.  Defaults to ``past + arange(seq)``.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D (batch, seq), got shape {token_ids.shape}")
        batch, seq = token_ids.shape
        past = kv_cache.length if kv_cache is not None else 0
        if past + seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {past + seq} (cached {past} + new {seq}) "
                f"exceeds max_seq_len {self.config.max_seq_len}"
            )
        if position_ids is not None:
            positions = np.asarray(position_ids, dtype=np.int64)
            if positions.shape != (batch, seq):
                raise ValueError(
                    f"position_ids shape {positions.shape} does not match tokens {(batch, seq)}"
                )
        else:
            positions = np.broadcast_to(
                np.arange(past, past + seq, dtype=np.int64), (batch, seq)
            )
        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        hidden = self.embedding_dropout(hidden)
        for index, block in enumerate(self.blocks):
            layer_cache = kv_cache.layers[index] if kv_cache is not None else None
            hidden = block(hidden, attention_mask=attention_mask, cache=layer_cache)
        hidden = self.ln_final(hidden)

        if self.lm_head is not None:
            logits = self.lm_head(hidden)
        else:
            logits = hidden.matmul(self.token_embedding.weight.transpose(1, 0))

        if return_hidden:
            return logits, hidden
        return logits

    # ------------------------------------------------------------------ #
    def hidden_states(
        self, token_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Last-hidden-layer states as a plain array (no graph kept).

        Runs inside :func:`repro.nn.inference_mode`, so the forward records no
        autograd tape at all — this is the hot path of the embedding-based
        quality metrics.
        """
        was_training = self.training
        self.eval()
        with inference_mode():
            _, hidden = self.forward(
                token_ids, attention_mask=attention_mask, return_hidden=True
            )
        if was_training:
            self.train()
        return hidden.data

    def new_kv_cache(self) -> KVCache:
        """A fresh, empty decoding cache sized for this model."""
        return KVCache(self.config.num_layers)

    def attention_blocks(self) -> List[TransformerBlock]:
        """The list of decoder blocks (used by the LoRA injection helpers)."""
        return list(self.blocks)

    def parameter_count(self) -> Tuple[int, int]:
        """``(total, trainable)`` scalar parameter counts."""
        return self.num_parameters(), self.num_parameters(trainable_only=True)
