"""Decoder-only transformer language model.

This is the on-device LLM stand-in for Llama-3B: the architecture family is
the same (token + positional embeddings, pre-LayerNorm decoder blocks with
causal multi-head self-attention and a GELU feed-forward, a final LayerNorm
and an output projection), only the size is scaled down so it trains and
fine-tunes in seconds on CPU.  The framework under test uses it through three
interfaces — next-token logits, last-hidden-layer embeddings, and LoRA
fine-tuning — each of which is exercised exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.attention import LayerKVCache, MultiHeadSelfAttention
from repro.nn.backend import active as _active
from repro.nn.layers import Dropout, Embedding, FeedForward, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, inference_mode, is_grad_enabled
from repro.utils.config import require_positive
from repro.utils.rng import as_generator


class KVCache:
    """Per-layer key/value caches for incremental decoding.

    One :class:`~repro.nn.attention.LayerKVCache` per decoder block; the
    model-level ``length`` is the number of context positions already encoded.
    The cache stores raw arrays (no autograd graph) and is intended for use
    inside :func:`repro.nn.inference_mode`.
    """

    def __init__(self, num_layers: int, capacity: Optional[int] = None) -> None:
        require_positive("num_layers", num_layers)
        self.layers = [LayerKVCache(capacity=capacity) for _ in range(num_layers)]

    @property
    def length(self) -> int:
        """Number of cached context positions."""
        return self.layers[0].length

    def reset(self) -> None:
        """Invalidate the cache (e.g. when the context window slides)."""
        for layer in self.layers:
            layer.reset()


@dataclass
class TransformerConfig:
    """Hyper-parameters of the decoder-only transformer."""

    vocab_size: int = 512
    max_seq_len: int = 64
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_multiplier: int = 4
    dropout_rate: float = 0.0
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        require_positive("vocab_size", self.vocab_size)
        require_positive("max_seq_len", self.max_seq_len)
        require_positive("dim", self.dim)
        require_positive("num_layers", self.num_layers)
        require_positive("num_heads", self.num_heads)
        require_positive("ffn_multiplier", self.ffn_multiplier)
        if self.dim % self.num_heads != 0:
            raise ValueError(
                f"dim ({self.dim}) must be divisible by num_heads ({self.num_heads})"
            )
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError(f"dropout_rate must lie in [0, 1), got {self.dropout_rate}")


class TransformerBlock(Module):
    """Pre-LayerNorm decoder block: LN → attention → residual, LN → FFN → residual."""

    def __init__(self, config: TransformerConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.ln_attn = LayerNorm(config.dim)
        self.attention = MultiHeadSelfAttention(
            config.dim, config.num_heads, dropout_rate=config.dropout_rate, rng=rng
        )
        self.ln_ffn = LayerNorm(config.dim)
        self.ffn = FeedForward(
            config.dim,
            config.dim * config.ffn_multiplier,
            dropout_rate=config.dropout_rate,
            rng=rng,
        )

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        cache: Optional[LayerKVCache] = None,
    ) -> Tensor:
        x = x + self.attention(self.ln_attn(x), attention_mask=attention_mask, cache=cache)
        x = x + self.ffn(self.ln_ffn(x))
        return x

    def raw_forward(
        self,
        hidden: np.ndarray,
        attention_mask: Optional[np.ndarray],
        cache: Optional[LayerKVCache],
        backend,
    ) -> np.ndarray:
        """Array-level block forward (same kernels as the autograd path).

        ``hidden`` must be owned by the caller: residuals are added in place.
        """
        normed, _ = backend.layernorm(
            hidden, self.ln_attn.weight.data, self.ln_attn.bias.data, self.ln_attn.eps
        )
        attn = self.attention.raw_forward(normed, attention_mask, cache)
        attn += hidden
        hidden = attn
        normed, _ = backend.layernorm(
            hidden, self.ln_ffn.weight.data, self.ln_ffn.bias.data, self.ln_ffn.eps
        )
        up = self.ffn.up.raw_forward(normed)
        act, _ = backend.gelu(up)
        down = self.ffn.down.raw_forward(act)
        dropout_mask = self.ffn.dropout.draw_mask(down.shape)
        if dropout_mask is not None:
            down *= dropout_mask
        down += hidden
        return down


class TransformerLM(Module):
    """Decoder-only causal language model returning logits and hidden states."""

    def __init__(self, config: TransformerConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng=rng)
        self.embedding_dropout = Dropout(config.dropout_rate, rng=rng)
        self.blocks = [TransformerBlock(config, rng=rng) for _ in range(config.num_layers)]
        self.ln_final = LayerNorm(config.dim)
        self._workspace = None  # lazily created by the fused decode step
        if config.tie_embeddings:
            self.lm_head: Optional[Linear] = None
        else:
            self.lm_head = Linear(config.dim, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------ #
    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        return_hidden: bool = False,
        kv_cache: Optional[KVCache] = None,
        position_ids: Optional[np.ndarray] = None,
    ):
        """Compute next-token logits for a batch of token-id sequences.

        Parameters
        ----------
        token_ids:
            Integer array of shape ``(batch, seq)``.
        attention_mask:
            Optional boolean array; ``False`` marks padding positions.  Shape
            ``(batch, seq)`` without a cache, ``(batch, past + seq)`` with one.
        return_hidden:
            When True, also return the final-LayerNorm hidden states
            ``(batch, seq, dim)`` — the "last hidden layer" the paper uses as
            the text-embedding function.
        kv_cache:
            Optional :class:`KVCache` for incremental decoding.  ``token_ids``
            then holds only the positions not yet encoded; their keys/values
            are appended to the cache and positions continue from its length.
        position_ids:
            Optional explicit positions of shape ``(batch, seq)``, used by
            left-padded batched decoding where each row starts at its own
            offset.  Defaults to ``past + arange(seq)``.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D (batch, seq), got shape {token_ids.shape}")
        batch, seq = token_ids.shape
        past = kv_cache.length if kv_cache is not None else 0
        if past + seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {past + seq} (cached {past} + new {seq}) "
                f"exceeds max_seq_len {self.config.max_seq_len}"
            )
        if position_ids is not None:
            positions = np.asarray(position_ids, dtype=np.int64)
            if positions.shape != (batch, seq):
                raise ValueError(
                    f"position_ids shape {positions.shape} does not match tokens {(batch, seq)}"
                )
        elif batch == 1:
            positions = np.arange(past, past + seq, dtype=np.int64).reshape(1, seq)
        else:
            positions = np.broadcast_to(
                np.arange(past, past + seq, dtype=np.int64), (batch, seq)
            )

        if not is_grad_enabled():
            logits_data, hidden_data = self._forward_raw(
                token_ids, attention_mask, kv_cache, positions
            )
            if return_hidden:
                return Tensor(logits_data), Tensor(hidden_data)
            return Tensor(logits_data)

        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        hidden = self.embedding_dropout(hidden)
        for index, block in enumerate(self.blocks):
            layer_cache = kv_cache.layers[index] if kv_cache is not None else None
            hidden = block(hidden, attention_mask=attention_mask, cache=layer_cache)
        hidden = self.ln_final(hidden)

        if self.lm_head is not None:
            logits = self.lm_head(hidden)
        else:
            logits = hidden.matmul(self.token_embedding.weight.transpose(1, 0))

        if return_hidden:
            return logits, hidden
        return logits

    def _forward_raw(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray],
        kv_cache: Optional[KVCache],
        positions: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-model array-level forward for the no-grad path.

        Runs the same backend kernels as the autograd path (bit-identical
        outputs) but builds no graph, allocates no Tensor wrappers per op, and
        adds residuals in place.  Returns ``(logits, hidden)`` arrays.
        """
        backend = _active()
        if (
            kv_cache is not None
            and attention_mask is None
            and not self.training
            and token_ids.shape == (1, 1)
        ):
            # Steady-state decode: one token, batch 1, every dropout inert.
            logits_row, hidden_row = self._decode_step(
                int(token_ids[0, 0]), int(positions[0, 0]), kv_cache, backend
            )
            # Copy out of the workspace so returned arrays survive later steps.
            return (
                logits_row.reshape(1, 1, -1).copy(),
                hidden_row.reshape(1, 1, -1).copy(),
            )
        hidden = self.token_embedding.rows(token_ids)
        # Positions were already range-checked against max_seq_len above, so
        # the embedding's own bounds validation can be skipped here.
        hidden += self.position_embedding.weight.data[positions]
        dropout_mask = self.embedding_dropout.draw_mask(hidden.shape)
        if dropout_mask is not None:
            hidden *= dropout_mask
        for index, block in enumerate(self.blocks):
            layer_cache = kv_cache.layers[index] if kv_cache is not None else None
            hidden = block.raw_forward(hidden, attention_mask, layer_cache, backend)
        hidden, _ = backend.layernorm(
            hidden, self.ln_final.weight.data, self.ln_final.bias.data, self.ln_final.eps
        )
        if self.lm_head is not None:
            logits = self.lm_head.raw_forward(hidden)
        else:
            logits = hidden @ self.token_embedding.weight.data.T
        return logits, hidden

    def decode_logits(self, token_id: int, kv_cache: KVCache) -> np.ndarray:
        """One fused single-token decode step; returns the ``(vocab,)`` logits row.

        The tightest entry point for steady-state greedy/sampled decoding:
        equivalent to ``forward([[token_id]], kv_cache=...)`` in eval mode but
        without the batched-path wrapping.  The returned array is
        workspace-owned — read it (or copy) before the next decode step.
        """
        if is_grad_enabled():
            raise RuntimeError(
                "KV cache is an inference structure; wrap the forward in "
                "repro.nn.inference_mode() when decoding with a cache"
            )
        if self.training:
            raise RuntimeError("decode_logits requires eval mode (dropout must be inert)")
        past = kv_cache.length
        if past + 1 > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {past + 1} (cached {past} + new 1) "
                f"exceeds max_seq_len {self.config.max_seq_len}"
            )
        if not 0 <= token_id < self.config.vocab_size:
            raise IndexError(
                f"token id out of range [0, {self.config.vocab_size}): "
                f"min={token_id}, max={token_id}"
            )
        logits, _ = self._decode_step(token_id, past, kv_cache, _active())
        return logits

    def _decode_step(self, token_id: int, position: int, kv_cache: KVCache, backend):
        """Fused per-token decode: row kernels + preallocated workspace.

        Every intermediate lives in a :class:`Workspace` buffer keyed by
        layer, so after the first step the whole forward runs allocation-free
        apart from a few attention temporaries that grow with context length.
        Returned rows are workspace-owned views — callers must copy.
        """
        workspace = self._workspace
        if workspace is None:
            workspace = self._workspace = backend.Workspace()
        dim = self.config.dim
        hidden = workspace.get("hidden", (dim,))
        np.add(
            self.token_embedding.weight.data[token_id],
            self.position_embedding.weight.data[position],
            out=hidden,
        )
        for index, block in enumerate(self.blocks):
            normed = backend.layernorm_row(
                hidden,
                block.ln_attn.weight.data,
                block.ln_attn.bias.data,
                block.ln_attn.eps,
                workspace.get(("ln_attn", index), (dim,)),
            )
            hidden += block.attention.raw_decode_row(
                normed, kv_cache.layers[index], workspace, index
            )
            normed = backend.layernorm_row(
                hidden,
                block.ln_ffn.weight.data,
                block.ln_ffn.bias.data,
                block.ln_ffn.eps,
                workspace.get(("ln_ffn", index), (dim,)),
            )
            up = block.ffn.up.project_row(
                normed, workspace.get(("up", index), (block.ffn.up.out_features,))
            )
            act, _ = backend.gelu(up)
            hidden += block.ffn.down.project_row(
                act, workspace.get(("down", index), (dim,))
            )
        normed = backend.layernorm_row(
            hidden,
            self.ln_final.weight.data,
            self.ln_final.bias.data,
            self.ln_final.eps,
            workspace.get("ln_final", (dim,)),
        )
        if self.lm_head is not None:
            logits = self.lm_head.project_row(
                normed, workspace.get("logits", (self.lm_head.out_features,))
            )
        else:
            weight = self.token_embedding.weight.data
            logits = np.dot(weight, normed, out=workspace.get("logits", (weight.shape[0],)))
        return logits, normed

    # ------------------------------------------------------------------ #
    def hidden_states(
        self, token_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Last-hidden-layer states as a plain array (no graph kept).

        Runs inside :func:`repro.nn.inference_mode`, so the forward records no
        autograd tape at all — this is the hot path of the embedding-based
        quality metrics.
        """
        was_training = self.training
        self.eval()
        with inference_mode():
            _, hidden = self.forward(
                token_ids, attention_mask=attention_mask, return_hidden=True
            )
        if was_training:
            self.train()
        return hidden.data

    def new_kv_cache(self) -> KVCache:
        """A fresh, empty decoding cache sized for this model.

        The per-layer buffers are preallocated to ``max_seq_len`` positions so
        steady-state decoding never reallocates or concatenates.
        """
        return KVCache(self.config.num_layers, capacity=self.config.max_seq_len)

    def attention_blocks(self) -> List[TransformerBlock]:
        """The list of decoder blocks (used by the LoRA injection helpers)."""
        return list(self.blocks)

    def parameter_count(self) -> Tuple[int, int]:
        """``(total, trainable)`` scalar parameter counts."""
        return self.num_parameters(), self.num_parameters(trainable_only=True)
