"""Low-Rank Adaptation (LoRA) for the transformer attention projections.

Implements the fine-tuning setup the paper uses: frozen base weights plus
trainable low-rank deltas on ``q_proj``, ``k_proj``, ``v_proj`` and ``o_proj``
with rank ``r``, scaling factor ``alpha`` and LoRA dropout.  The adapted
forward pass is

    ``y = x W_base^T + b + (alpha / r) * dropout(x) A^T B^T``

where ``A`` (``r x in``) is Gaussian-initialised and ``B`` (``out x r``) is
zero-initialised so the adapter starts as an exact no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.backend import active as _active
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.config import require_positive
from repro.utils.rng import as_generator

DEFAULT_TARGET_LAYERS: Tuple[str, ...] = ("q_proj", "k_proj", "v_proj", "o_proj")


@dataclass
class LoRAConfig:
    """LoRA hyper-parameters (defaults follow the paper's setup)."""

    rank: int = 8
    alpha: float = 16.0
    dropout_rate: float = 0.05
    target_layers: Tuple[str, ...] = DEFAULT_TARGET_LAYERS

    def __post_init__(self) -> None:
        require_positive("rank", self.rank)
        require_positive("alpha", self.alpha)
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError(f"dropout_rate must lie in [0, 1), got {self.dropout_rate}")
        if not self.target_layers:
            raise ValueError("target_layers must not be empty")

    @property
    def scaling(self) -> float:
        """The effective adapter scaling ``alpha / rank``."""
        return self.alpha / self.rank


class LoRALinear(Module):
    """A frozen :class:`Linear` augmented with a trainable low-rank delta."""

    def __init__(
        self,
        base: Linear,
        config: LoRAConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.base = base
        self.config = config
        # Freeze the base projection: only the adapter trains.
        self.base.weight.requires_grad = False
        if self.base.bias is not None:
            self.base.bias.requires_grad = False
        in_features = base.in_features
        out_features = base.out_features
        self.lora_a = Tensor(
            (rng.standard_normal((config.rank, in_features)) * 0.01).astype(np.float32),
            requires_grad=True,
            name="lora_a",
        )
        self.lora_b = Tensor(
            np.zeros((out_features, config.rank), dtype=np.float32),
            requires_grad=True,
            name="lora_b",
        )
        self.lora_dropout = Dropout(config.dropout_rate, rng=rng)

    @property
    def in_features(self) -> int:
        return self.base.in_features

    @property
    def out_features(self) -> int:
        return self.base.out_features

    def forward(self, x: Tensor) -> Tensor:
        base_out = self.base(x)
        dropout_mask = self.lora_dropout.draw_mask(x.shape)
        delta = F.lora_matmul(
            x, self.lora_a, self.lora_b, self.config.scaling, dropout_mask
        )
        return base_out + delta

    def raw_forward(self, x: np.ndarray) -> np.ndarray:
        """Array-level forward for the no-grad decode path (same kernels)."""
        out = self.base.raw_forward(x)
        dropout_mask = self.lora_dropout.draw_mask(x.shape)
        delta, _ = _active().lora_matmul(
            x, self.lora_a.data, self.lora_b.data, self.config.scaling, dropout_mask
        )
        out += delta
        return out

    def project_row(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Single-row decode projection: base GEMV plus the low-rank delta.

        Only called from the fused decode step, which requires every dropout
        to be inert (eval mode), so no mask is drawn here.
        """
        self.base.project_row(x, out)
        mid = self.lora_a.data @ x
        delta = self.lora_b.data @ mid
        delta *= self.config.scaling
        out += delta
        return out

    def delta_weight(self) -> np.ndarray:
        """The dense weight delta ``(alpha/r) * B A`` contributed by the adapter."""
        return self.config.scaling * (self.lora_b.data @ self.lora_a.data)

    def merge(self) -> Linear:
        """Fold the adapter into the base layer and return the merged Linear."""
        self.base.weight.data = self.base.weight.data + self.delta_weight().astype(
            self.base.weight.data.dtype
        )
        return self.base

    def reset_adapter(self) -> None:
        """Zero the adapter so it is a no-op again (B back to zero)."""
        self.lora_b.data = np.zeros_like(self.lora_b.data)
        self.lora_a.grad = None
        self.lora_b.grad = None


def inject_lora(
    model: Module,
    config: Optional[LoRAConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[LoRALinear]:
    """Replace targeted attention projections in ``model`` with LoRA layers.

    Walks every :class:`MultiHeadSelfAttention` submodule and wraps the
    projections named in ``config.target_layers``.  All other model
    parameters are frozen, reproducing the paper's parameter-efficient
    fine-tuning regime.  Returns the list of injected adapters.
    """
    config = config or LoRAConfig()
    rng = as_generator(rng)
    adapters: List[LoRALinear] = []
    attention_modules = [
        module for module in model.modules() if isinstance(module, MultiHeadSelfAttention)
    ]
    if not attention_modules:
        raise ValueError("model contains no MultiHeadSelfAttention modules to adapt")
    for attention in attention_modules:
        for layer_name in config.target_layers:
            projection = getattr(attention, layer_name, None)
            if projection is None:
                raise AttributeError(
                    f"attention module has no projection named {layer_name!r}"
                )
            if isinstance(projection, LoRALinear):
                continue
            adapter = LoRALinear(projection, config, rng=rng)
            setattr(attention, layer_name, adapter)
            adapters.append(adapter)
    freeze_non_lora_parameters(model)
    return adapters


def freeze_non_lora_parameters(model: Module) -> int:
    """Freeze every parameter that is not a LoRA adapter weight.

    Returns the number of tensors frozen.
    """
    lora_tensors = {id(t) for t in lora_parameters(model)}
    frozen = 0
    for _, tensor in model.named_parameters():
        if id(tensor) not in lora_tensors and tensor.requires_grad:
            tensor.requires_grad = False
            tensor.grad = None
            frozen += 1
    return frozen


def lora_layers(model: Module) -> List[LoRALinear]:
    """All :class:`LoRALinear` layers inside ``model``."""
    return [module for module in model.modules() if isinstance(module, LoRALinear)]


def lora_parameters(model: Module) -> List[Tensor]:
    """The trainable LoRA parameter tensors (A and B matrices)."""
    parameters: List[Tensor] = []
    for layer in lora_layers(model):
        parameters.extend([layer.lora_a, layer.lora_b])
    return parameters


def lora_state_dict(model: Module) -> Dict[str, np.ndarray]:
    """Adapter-only state dict (the artefact an edge device would persist)."""
    state: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(lora_layers(model)):
        state[f"adapter.{index}.lora_a"] = layer.lora_a.data.copy()
        state[f"adapter.{index}.lora_b"] = layer.lora_b.data.copy()
    return state


def clone_lora_state(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """A deep copy of an adapter state dict (arrays owned by the copy).

    The serving layer hands adapter states between the in-memory cache, the
    live model and the on-disk store; copying at the boundary keeps each
    owner's arrays isolated so a later fine-tuning round cannot silently
    mutate a cached snapshot.
    """
    return {key: np.array(value, dtype=np.float32, copy=True) for key, value in state.items()}


def lora_state_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Total payload bytes of an adapter state dict (cache-budget accounting)."""
    return int(sum(np.asarray(value).nbytes for value in state.values()))


def load_lora_state_dict(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Load an adapter-only state dict produced by :func:`lora_state_dict`."""
    layers = lora_layers(model)
    expected_keys = {
        key for index in range(len(layers)) for key in (f"adapter.{index}.lora_a", f"adapter.{index}.lora_b")
    }
    if set(state) != expected_keys:
        raise ValueError(
            f"LoRA state dict keys {sorted(state)} do not match expected {sorted(expected_keys)}"
        )
    # Validate every shape before assigning anything, so an incompatible
    # state (saved under a different LoRA rank or model size) fails cleanly
    # instead of half-loading.
    converted = []
    for index, layer in enumerate(layers):
        for name, target in (("lora_a", layer.lora_a), ("lora_b", layer.lora_b)):
            value = np.asarray(state[f"adapter.{index}.{name}"], dtype=np.float32)
            if value.shape != target.data.shape:
                raise ValueError(
                    f"adapter.{index}.{name} has shape {value.shape} but the "
                    f"model's adapter expects {target.data.shape} — the state "
                    "was saved under a different LoRA rank or model size"
                )
            converted.append((target, value))
    for target, value in converted:
        target.data = value.copy()


def merge_lora(model: Module) -> int:
    """Merge every adapter into its base layer; returns the number merged.

    After merging, the attention modules hold plain :class:`Linear` layers
    again (with updated weights) and no LoRA parameters remain.
    """
    merged = 0
    for attention in model.modules():
        if not isinstance(attention, MultiHeadSelfAttention):
            continue
        for layer_name in DEFAULT_TARGET_LAYERS:
            projection = getattr(attention, layer_name, None)
            if isinstance(projection, LoRALinear):
                setattr(attention, layer_name, projection.merge())
                merged += 1
    return merged


def count_trainable_fraction(model: Module) -> float:
    """Fraction of scalar parameters that are trainable (LoRA efficiency check)."""
    total = model.num_parameters()
    trainable = model.num_parameters(trainable_only=True)
    if total == 0:
        return 0.0
    return trainable / total
