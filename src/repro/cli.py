"""The unified experiment runner CLI.

One entrypoint drives every registered experiment through the pipeline
engine, with JSON artifacts and full-state checkpoints per run::

    repro run figure2 --scale smoke --out runs/fig2-smoke
    repro run table3 --scale smoke --dataset meddialog --bins 2,4,8
    repro list

Also reachable as ``python -m repro ...`` and ``python -m repro.experiments
...`` (the module form works straight from a source checkout with
``PYTHONPATH=src``; the ``repro`` console script is installed by
``pip install -e .``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.presets import ExperimentScale  # noqa: F401  (docs/type reference)
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.utils.logging import enable_console_logging


def _csv_strings(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    try:
        return [int(item) for item in _csv_strings(text)]
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers: {error}")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified runner for the paper-reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser(
        "run",
        help="run one registered experiment and write its artifacts",
        description=(
            "Run one experiment (figure2/figure3/table2/table3/table4) at the "
            "chosen scale; writes result.json, run.json and per-run engine "
            "checkpoints under --out."
        ),
    )
    run.add_argument("experiment", help="registered experiment name (see `repro list`)")
    run.add_argument(
        "--scale",
        default=None,
        help="scale preset: smoke / small / paper (default: $REPRO_SCALE or small)",
    )
    run.add_argument("--seed", type=int, default=0, help="experiment seed (default 0)")
    run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="run directory for JSON artifacts + checkpoints "
        "(default runs/<experiment>-<scale>-seed<seed>; use --no-artifacts to skip)",
    )
    run.add_argument(
        "--no-artifacts",
        action="store_true",
        help="do not write any files; print the result only",
    )
    run.add_argument(
        "--datasets",
        type=_csv_strings,
        default=None,
        help="comma-separated dataset analogues (figure2/table2/table4)",
    )
    run.add_argument(
        "--dataset", default=None, help="single dataset analogue (figure3/table3)"
    )
    run.add_argument(
        "--methods",
        type=_csv_strings,
        default=None,
        help="comma-separated selection methods",
    )
    run.add_argument("--method", default=None, help="single selection method (figure3)")
    run.add_argument(
        "--num-seeds",
        type=int,
        default=None,
        help="framework-seed repetitions to average over",
    )
    run.add_argument(
        "--counts",
        type=_csv_ints,
        default=None,
        help="comma-separated synthesis counts (figure3)",
    )
    run.add_argument(
        "--bins",
        type=_csv_ints,
        default=None,
        dest="bins_list",
        help="comma-separated buffer bin counts (table3)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress logging")

    subparsers.add_parser(
        "list",
        help="list the registered experiments",
        description="List every experiment the `run` subcommand accepts.",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a synthetic multi-user load over one shared base model",
        description=(
            "Run the multi-tenant serving smoke: N users share one frozen base "
            "model, each with a persisted LoRA adapter; a deterministic "
            "synthetic load of chat + personalize requests is scheduled in "
            "same-adapter batches.  Prints throughput, adapter-swap and "
            "cache statistics plus the transcript digest; writes "
            "serve_result.json and the adapter files under --out."
        ),
    )
    serve.add_argument("--users", type=int, default=8, help="number of tenants (default 8)")
    serve.add_argument(
        "--requests", type=int, default=64, help="total requests in the load (default 64)"
    )
    serve.add_argument(
        "--scale",
        default=None,
        help="scale preset: smoke / small / paper (default: $REPRO_SCALE or small)",
    )
    serve.add_argument("--seed", type=int, default=0, help="load + model seed (default 0)")
    serve.add_argument(
        "--dataset", default="meddialog", help="dataset analogue for the load (default meddialog)"
    )
    serve.add_argument(
        "--personalize-every",
        type=int,
        default=8,
        help="every k-th request of a user is a personalize/fine-tune job (default 8)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="max same-adapter chat requests decoded in one batch (default 8)",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=4,
        help="adapters held in the in-memory LRU cache (default 4)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard users across N shared-nothing workers behind a "
        "consistent-hash router (forked processes where available, threads "
        "otherwise); the aggregate transcript digest is identical for any N "
        "(default 1: the single-scheduler path)",
    )
    serve.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="run directory for serve_result.json + adapter files; any adapters "
        "from a previous run there are reset so a rerun is deterministic "
        "(default runs/serve-<scale>-seed<seed>; use --no-artifacts to skip)",
    )
    serve.add_argument(
        "--no-artifacts",
        action="store_true",
        help="do not write any files; print the report only",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable-serving state (request journal + per-user checkpoints); "
        "enables crash-safe replay (default <out>/state when --chaos/--resume)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing journal in --state-dir: finished requests are "
        "skipped, committed fine-tunes roll forward, the rest re-serves",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="inject a deterministic fault schedule (store I/O errors, a corrupt "
        "adapter file, a slow session, a soft crash) derived from --seed",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts for transient failures (capped exponential backoff "
        "with deterministic jitter; 1 disables retrying; default 3)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request latency deadline; overdue work dead-letters "
        "(default: none)",
    )
    serve.add_argument(
        "--pretrain-epochs",
        type=int,
        default=None,
        help="override the scale preset's base-model pre-training epochs "
        "(chaos smoke uses 1 to keep restarts fast)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress progress logging")
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve over a real TCP socket instead of a synthetic load: start "
        "the asyncio front-end (newline-delimited JSON protocol; port 0 "
        "binds an ephemeral port) and run until SIGINT/SIGTERM or a "
        "client's shutdown op drains it",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="with --listen: write the bound port here once the socket is "
        "live (how CI discovers a --listen 127.0.0.1:0 server)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="with --listen: record every admitted request to a replayable "
        "trace file (see `repro replay`)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="with --listen: max accepted-but-unfinished requests before "
        "clients get busy frames (default 64)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="with --listen: max in-flight requests per user before busy "
        "frames (default 4)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a rolling JSON metrics snapshot here every "
        "--metrics-interval seconds while serving (see docs/observability.md)",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between --metrics-out snapshots (default 1.0)",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip metrics export: no metrics.json, no metrics key in "
        "serve_result.json (collection itself is always on and digest-neutral)",
    )

    replay_cmd = subparsers.add_parser(
        "replay",
        help="replay a recorded serve trace against a fresh server",
        description=(
            "Boot a fresh front-end server from the configuration recorded in "
            "TRACE, re-drive the recorded per-user request streams over real "
            "sockets, and compare the resulting transcript digest against the "
            "recorded one.  Exits 0 on a byte-identical digest, 1 on a "
            "mismatch, 2 when the trace is missing/malformed."
        ),
    )
    replay_cmd.add_argument("trace", help="trace file recorded with `repro serve --trace-out`")
    replay_cmd.add_argument(
        "--pretrain-epochs",
        type=int,
        default=None,
        help="override the recorded base-model pre-training epochs",
    )
    replay_cmd.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write a JSON comparison report here",
    )
    replay_cmd.add_argument("--quiet", action="store_true", help="suppress progress logging")

    migrate = subparsers.add_parser(
        "migrate-adapters",
        help="convert legacy pickle adapter files to the A1 binary format",
        description=(
            "One-shot store migration: every *.adapter.pkl in DIR is decoded, "
            "re-encoded as a checksummed A1 binary record (*.adapter.bin), "
            "verified bit-identical against the pickle payload, and only then "
            "replaces it.  Users that already have a binary record are "
            "skipped; undecodable pickles are reported and left in place.  "
            "Exits 0 when every adapter migrated (or was already migrated), "
            "1 when any failed, 2 when DIR does not exist.  Sharded adapter "
            "roots are migrated per shard: run once per shard-NN directory."
        ),
    )
    migrate.add_argument("directory", help="adapter directory holding *.adapter.pkl files")
    migrate.add_argument(
        "--keep-pickles",
        action="store_true",
        help="leave the legacy pickle files in place next to the new binary "
        "records (default: delete each pickle once its record verifies)",
    )
    return parser


def _collect_options(spec_options: Sequence[str], args: argparse.Namespace) -> dict:
    """CLI flags -> runner kwargs, keeping only what the experiment accepts."""
    candidates = {
        "datasets": args.datasets,
        "dataset": args.dataset,
        "methods": args.methods,
        "method": args.method,
        "num_seeds": args.num_seeds,
        "counts": args.counts,
        "bins_list": args.bins_list,
    }
    options = {}
    for name, value in candidates.items():
        if value is None:
            continue
        if name not in spec_options:
            raise SystemExit(
                f"error: experiment {args.experiment!r} does not accept --"
                f"{name.replace('_list', '').replace('_', '-')} "
                f"(accepted options: {sorted(set(spec_options) - {'run_dir'})})"
            )
        options[name] = value
    return options


def _command_list() -> int:
    for name in experiment_names():
        spec = get_experiment(name)
        print(f"{name:<10} {spec.title}")
        print(f"{'':<10} {spec.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()
    try:
        spec = get_experiment(args.experiment)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    options = _collect_options(spec.options, args)

    if args.no_artifacts and args.out is not None:
        print(
            "error: --out and --no-artifacts contradict each other "
            "(--no-artifacts writes nothing, including checkpoints)",
            file=sys.stderr,
        )
        return 2
    out_dir = args.out
    scale_name = args.scale
    if out_dir is None and not args.no_artifacts:
        from repro.experiments.presets import get_scale

        resolved = get_scale(scale_name, seed=args.seed)
        out_dir = f"runs/{args.experiment}-{resolved.name}-seed{args.seed}"

    run = run_experiment(
        args.experiment,
        scale=scale_name,
        seed=args.seed,
        out_dir=out_dir,
        **options,
    )
    print(f"== {spec.title} (scale={run.scale}, seed={run.seed}) ==")
    print(spec.formatter(run.result))
    print(f"\ncompleted in {run.seconds:.1f}s")
    if run.artifacts:
        for kind, path in sorted(run.artifacts.items()):
            print(f"{kind}: {path}")
        print(f"checkpoints: {run.run_dir / 'checkpoints'}")
    return 0


def _prepare_serve_dirs(config, default_name: str, allow_temp_state: bool = True):
    """Resolve the run/adapter/state directories for one serve invocation.

    Returns ``(config, out_path, temporary_state)`` with the resolved paths
    filled into the config.  Adapter and state directories left over from a
    previous run into the same ``--out`` are reset (unless resuming) so a
    rerun is deterministic.  A durable run with no run directory gets its
    state in a temporary directory when ``allow_temp_state`` (the synthetic
    load paths); the socket front-end skips that — with no ``--out`` it just
    serves non-durably.
    """
    import shutil
    import tempfile
    from pathlib import Path

    scale = config.resolved_scale()
    out_dir = config.out_dir
    if out_dir is None and not config.no_artifacts:
        out_dir = Path(f"runs/{default_name}-{scale.name}-seed{config.seed}")
    adapter_dir = None
    out_path = None
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        adapter_dir = out_path / "adapters"
        if adapter_dir.exists() and not config.resume:
            shutil.rmtree(adapter_dir)

    temporary_state = None
    state_dir = config.state_dir
    if config.durable and state_dir is None:
        if out_path is not None:
            state_dir = out_path / "state"
        elif allow_temp_state:
            temporary_state = tempfile.TemporaryDirectory(prefix="repro-serve-state-")
            state_dir = Path(temporary_state.name) / "state"
    if state_dir is not None and state_dir.exists() and not config.resume:
        shutil.rmtree(state_dir)

    config = config.with_(out_dir=out_path, adapter_dir=adapter_dir, state_dir=state_dir)
    return config, out_path, temporary_state


def _write_metrics_snapshot(out_path, metrics) -> None:
    """Write the drained run's metrics next to serve_result.json."""
    if metrics is None:
        return
    from repro.obs import write_snapshot
    from repro.serve.config import METRICS_FILE

    path = out_path / METRICS_FILE
    write_snapshot(path, metrics)
    print(f"metrics: {path}")


def _command_serve_frontend(config) -> int:
    """The ``repro serve --listen`` path: a real TCP server until drained."""
    import json

    from repro.serve.frontend import ServeFrontend

    scale = config.resolved_scale()
    config, out_path, _ = _prepare_serve_dirs(config, "serve-frontend", allow_temp_state=False)
    try:
        frontend = ServeFrontend(config)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    outcome = frontend.run()
    print(f"== serve front-end (scale={scale.name}, seed={config.seed}) ==")
    print(
        f"served {outcome.total_requests} request(s) "
        f"({outcome.chat_requests} chat / {outcome.personalize_requests} personalize) "
        f"for {outcome.num_users} user(s) on {outcome.host}:{outcome.port}"
    )
    print(
        f"throughput: {outcome.requests_per_sec:.2f} req/s "
        f"({outcome.elapsed_seconds:.1f}s listening)"
    )
    if outcome.busy_rejections:
        print(
            f"backpressure: {outcome.busy_rejections} busy refusal(s), "
            f"peak depth {outcome.max_queue_depth_seen}"
        )
    if outcome.dead_letter_requests or outcome.degraded_chat_requests:
        print(
            f"robustness: {outcome.degraded_chat_requests} degraded chats, "
            f"{outcome.dead_letter_requests} dead-lettered"
        )
    if outcome.replayed_requests:
        print(f"crash recovery: {outcome.replayed_requests} request(s) recovered on resume")
    print(f"transcript digest: {outcome.transcript_digest}")
    if outcome.journal_digest is not None:
        print(f"journal digest: {outcome.journal_digest}")
    if config.trace_out is not None:
        print(f"trace: {config.trace_out}")
    if out_path is not None:
        result_path = out_path / "serve_result.json"
        payload = outcome.to_dict()
        payload["scale"] = scale.name
        payload["seed"] = config.seed
        result_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"result: {result_path}")
        _write_metrics_snapshot(out_path, outcome.metrics)
    if outcome.all_dead_lettered:
        print(
            "error: every request dead-lettered — the serving layer made no "
            "progress (dead-letter frames were delivered before close)",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_replay(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()

    import json
    from pathlib import Path

    from repro.experiments.presets import get_scale
    from repro.serve.client import replay_trace_against
    from repro.serve.frontend import FrontendThread, ServeFrontend
    from repro.serve.trace import TraceError, load_trace

    try:
        trace = load_trace(args.trace)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if trace.dropped_records:
        print(
            f"error: trace has {trace.dropped_records} corrupt record(s); "
            "refusing to replay against a damaged expectation",
            file=sys.stderr,
        )
        return 2
    if trace.digest is None:
        print(
            "error: trace has no summary digest (recorder was killed before "
            "the run drained); nothing to verify against",
            file=sys.stderr,
        )
        return 2

    meta = trace.meta
    seed = int(meta.get("seed", 0))
    scale = get_scale(meta.get("scale"), seed=seed)
    pretrain_epochs = args.pretrain_epochs
    if pretrain_epochs is None:
        recorded = meta.get("pretrain_epochs")
        pretrain_epochs = None if recorded is None else int(recorded)
    frontend = ServeFrontend(
        host="127.0.0.1",
        port=0,
        scale=scale,
        seed=seed,
        dataset=meta.get("dataset", "meddialog"),
        pretrain_epochs=pretrain_epochs,
        max_batch_size=int(meta.get("max_batch_size", 8)),
    )
    server = FrontendThread(frontend)
    host, port = server.start()
    print(f"replaying {len(trace.requests)} request(s) against {host}:{port}")
    try:
        replay_trace_against(host, port, trace)
    finally:
        outcome = server.stop()
    match = outcome.transcript_digest == trace.digest
    print(f"recorded digest: {trace.digest}")
    print(f"replayed digest: {outcome.transcript_digest}")
    if args.out is not None:
        Path(args.out).write_text(
            json.dumps(
                {
                    "trace": str(args.trace),
                    "requests": len(trace.requests),
                    "recorded_digest": trace.digest,
                    "replayed_digest": outcome.transcript_digest,
                    "match": match,
                },
                indent=2,
            )
            + "\n"
        )
    if not match:
        print("error: replay diverged from the recorded run", file=sys.stderr)
        return 1
    print("replay matches the recorded run")
    return 0


def _normalized_aggregate_digest(transcript) -> str:
    """The sharded-run digest computed from a single-scheduler transcript.

    Normalizes each entry to its per-user sequence number (request ids are
    arrival-order noise) and composes per-user digests exactly as the shard
    layer does, so ``--workers 1`` output is byte-comparable with any
    ``--workers N`` run of the same load (see docs/scaling.md).
    """
    from repro.serve.frontend import normalize_entry
    from repro.serve.shard import aggregate_transcript_digest

    seqs: dict = {}
    normalized = []
    for entry in sorted(transcript, key=lambda record: record["request_id"]):
        seq = seqs.get(entry["user_id"], 0)
        seqs[entry["user_id"]] = seq + 1
        normalized.append(normalize_entry(entry, seq))
    return aggregate_transcript_digest(normalized)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.config import ServeConfig

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if not args.quiet:
        enable_console_logging()
    # The one place serve argv becomes configuration; everything below (and
    # every entry point) reads the typed config.
    config = ServeConfig.from_args(args)
    if config.listen is not None:
        return _command_serve_frontend(config)
    for flag, name in (
        (config.port_file, "--port-file"),
        (config.trace_out, "--trace-out"),
    ):
        if flag is not None:
            print(f"error: {name} requires --listen", file=sys.stderr)
            return 2
    if config.no_artifacts and config.out_dir is not None:
        print(
            "error: --out and --no-artifacts contradict each other "
            "(--no-artifacts writes nothing, including adapter files)",
            file=sys.stderr,
        )
        return 2
    if config.workers > 1:
        return _command_serve_sharded(config)

    import json

    from repro.serve import run_serve

    scale = config.resolved_scale()
    config, out_path, temporary_state = _prepare_serve_dirs(config, "serve")
    try:
        outcome = run_serve(config)
    finally:
        if temporary_state is not None:
            temporary_state.cleanup()
    report = outcome.report
    print(f"== multi-tenant serve (scale={scale.name}, seed={config.seed}) ==")
    print(
        f"served {report.total_requests} requests "
        f"({report.chat_requests} chat / {report.personalize_requests} personalize) "
        f"for {report.num_users} users in {report.num_turns} turns"
    )
    print(
        f"throughput: {report.requests_per_sec:.2f} req/s "
        f"({report.elapsed_seconds:.1f}s total)"
    )
    print(
        f"adapter swaps: {report.swap['count']} "
        f"(mean {report.swap['mean_ms']:.2f} ms, max {report.swap['max_ms']:.2f} ms)"
    )
    print(
        f"adapter cache: hit rate {report.store['hit_rate']:.2f} "
        f"({report.store['evictions']} evictions, "
        f"{report.store['disk_loads']} disk loads, "
        f"{report.store['disk_writes']} disk writes)"
    )
    print(f"transcript digest: {report.transcript_digest}")
    aggregate_digest = _normalized_aggregate_digest(outcome.transcript)
    print(f"aggregate transcript digest: {aggregate_digest}")
    if report.retries or report.dead_letter_requests or report.degraded_chat_requests:
        print(
            f"robustness: {report.retries} retries, "
            f"{report.degraded_chat_requests} degraded chats, "
            f"{report.dead_letter_requests} dead-lettered"
        )
    if report.health:
        summary = ", ".join(
            f"{item['component']}={item['state']}" for item in report.health.values()
        )
        print(f"health: {summary}")
        for item in report.health.values():
            for reason in item.get("reasons", []):
                print(f"  [{item['component']}] {reason}")
    if outcome.restarts:
        print(f"crash recovery: {outcome.restarts} in-process restart(s)")
    if outcome.replayed_requests:
        print(f"crash recovery: {outcome.replayed_requests} fine-tune(s) rolled forward")
    if outcome.faults is not None:
        injected = ", ".join(
            f"{name}×{count}" for name, count in outcome.faults["injected"].items()
        )
        print(f"faults injected: {injected or 'none'}")
    if outcome.journal_digest is not None:
        print(f"journal digest: {outcome.journal_digest}")
    if out_path is not None:
        result_path = out_path / "serve_result.json"
        payload = report.to_dict()
        payload["scale"] = scale.name
        payload["seed"] = config.seed
        payload["load"] = {
            "num_users": config.load.num_users,
            "num_requests": config.load.num_requests,
            "dataset": config.load.dataset,
            "personalize_every": config.load.personalize_every,
        }
        payload["transcript"] = outcome.transcript
        payload["aggregate_digest"] = aggregate_digest
        payload["journal_digest"] = outcome.journal_digest
        payload["restarts"] = outcome.restarts
        payload["replayed_requests"] = outcome.replayed_requests
        payload["faults"] = outcome.faults
        result_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"result: {result_path}")
        print(f"adapters: {config.adapter_dir}")
        _write_metrics_snapshot(out_path, outcome.metrics)
    if report.total_requests > 0 and report.dead_letter_requests == report.total_requests:
        print(
            "error: every request dead-lettered — the serving layer made no "
            "progress (check the health reasons above)",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_serve_sharded(config) -> int:
    """The ``repro serve --workers N`` path: consistent-hash sharded serving."""
    import json

    from repro.serve.shard import ShardPoolError, run_serve_sharded

    scale = config.resolved_scale()
    config, out_path, temporary_state = _prepare_serve_dirs(config, "serve")
    try:
        outcome = run_serve_sharded(config)
    except ShardPoolError as error:
        print(f"error: {error}", file=sys.stderr)
        if config.state_dir is not None and temporary_state is None:
            print(
                f"the shard journals under {config.state_dir} are intact; "
                "rerun with --resume to recover",
                file=sys.stderr,
            )
        return 1
    finally:
        if temporary_state is not None:
            temporary_state.cleanup()
    print(
        f"== sharded multi-tenant serve (scale={scale.name}, seed={config.seed}, "
        f"workers={outcome.num_workers}, mode={outcome.mode}) =="
    )
    print(
        f"served {outcome.total_requests} requests for "
        f"{len(outcome.user_digests)} users across {outcome.num_workers} shard(s)"
    )
    print(
        f"throughput: {outcome.requests_per_sec:.2f} req/s "
        f"({outcome.elapsed_seconds:.1f}s total)"
    )
    for summary in outcome.shard_summaries:
        print(
            f"  shard {summary['index']:02d}: {summary['served']} served "
            f"for {len(summary['users'])} user(s)"
        )
    print(f"aggregate transcript digest: {outcome.aggregate_digest}")
    if outcome.dead_letter_requests or outcome.degraded_chat_requests:
        print(
            f"robustness: {outcome.degraded_chat_requests} degraded chats, "
            f"{outcome.dead_letter_requests} dead-lettered"
        )
    if outcome.restarts:
        print(f"crash recovery: {outcome.restarts} in-shard restart(s)")
    if outcome.replayed_requests:
        print(f"crash recovery: {outcome.replayed_requests} fine-tune(s) rolled forward")
    if out_path is not None:
        result_path = out_path / "serve_result.json"
        payload = outcome.to_dict()
        payload["scale"] = scale.name
        payload["seed"] = config.seed
        payload["load"] = {
            "num_users": config.load.num_users,
            "num_requests": config.load.num_requests,
            "dataset": config.load.dataset,
            "personalize_every": config.load.personalize_every,
        }
        # The single-scheduler result key, so digest-comparing tooling can
        # read either shape without caring about --workers.
        payload["transcript_digest"] = outcome.aggregate_digest
        result_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"result: {result_path}")
        print(f"adapters: {config.adapter_dir}")
        _write_metrics_snapshot(out_path, outcome.metrics)
    if outcome.all_dead_lettered:
        print(
            "error: every request dead-lettered — the serving layer made no "
            "progress (check the shard summaries above)",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_migrate_adapters(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve.adapter_store import migrate_adapter_directory

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    report = migrate_adapter_directory(directory, keep_pickles=args.keep_pickles)
    print(f"== adapter migration ({directory}) ==")
    print(
        f"migrated {len(report.migrated)}, skipped {len(report.skipped)} "
        f"(already binary), failed {len(report.failed)}"
    )
    for user_id in report.migrated:
        print(f"  migrated: {user_id}")
    for user_id, reason in report.failed:
        print(f"  FAILED {user_id}: {reason}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro``, ``python -m repro`` and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "migrate-adapters":
        return _command_migrate_adapters(args)
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
