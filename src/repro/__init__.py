"""repro — reproduction of "Enabling On-Device Large Language Model
Personalization with Self-Supervised Data Selection and Synthesis" (DAC 2024).

The package is organised bottom-up:

* :mod:`repro.nn` — numpy autograd, transformer, LoRA, optimizers;
* :mod:`repro.tokenizer` — word tokenizer and vocabulary;
* :mod:`repro.llm` — the on-device LLM wrapper (embedding, generation,
  LoRA fine-tuning, pre-training);
* :mod:`repro.textmetrics` — ROUGE, similarity and entropy measures;
* :mod:`repro.data` — domain lexicons, dialogue sets, synthetic corpora and
  the temporally-correlated stream simulator;
* :mod:`repro.core` — the paper's contribution: EOE/DSS/IDD quality metrics,
  the bin buffer, the selection policies (proposed + baselines), sparse
  annotation, data synthesis and the end-to-end personalization framework;
* :mod:`repro.eval` — ROUGE-1 evaluation and learning curves;
* :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro.data import make_corpus
    from repro.experiments import prepare_environment, run_method, smoke_scale

    env = prepare_environment("meddialog", scale=smoke_scale())
    result = run_method(env, "ours")
    print(result.final_rouge, result.learning_curve)
"""

from repro.core import (
    AnnotationOracle,
    DataBuffer,
    DataSynthesizer,
    FrameworkConfig,
    PersonalizationFramework,
    PersonalizationResult,
    QualityScoreSelector,
    QualityScorer,
    QualityScores,
    SynthesisConfig,
    make_selector,
    run_personalization,
)
from repro.data import (
    DialogueCorpus,
    DialogueSet,
    DialogueStream,
    LexiconCollection,
    builtin_lexicons,
    make_corpus,
)
from repro.eval import ResponseEvaluator
from repro.llm import FineTuneConfig, LoRAFineTuner, OnDeviceLLM, OnDeviceLLMConfig

__version__ = "1.0.0"

__all__ = [
    "AnnotationOracle",
    "DataBuffer",
    "DataSynthesizer",
    "DialogueCorpus",
    "DialogueSet",
    "DialogueStream",
    "FineTuneConfig",
    "FrameworkConfig",
    "LexiconCollection",
    "LoRAFineTuner",
    "OnDeviceLLM",
    "OnDeviceLLMConfig",
    "PersonalizationFramework",
    "PersonalizationResult",
    "QualityScoreSelector",
    "QualityScorer",
    "QualityScores",
    "ResponseEvaluator",
    "SynthesisConfig",
    "builtin_lexicons",
    "make_corpus",
    "make_selector",
    "run_personalization",
    "__version__",
]
