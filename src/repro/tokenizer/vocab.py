"""Vocabulary: bidirectional mapping between token strings and integer ids.

The vocabulary is word-level.  The paper embeds text with the deployed LLM's
own tokenizer/embedding; here the tokenizer is intentionally simple (regex
word splitting, see :mod:`repro.tokenizer.word_tokenizer`) so the whole stack
stays CPU-friendly while preserving the interfaces the framework needs.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union


class SpecialTokens:
    """Canonical special tokens used across the library."""

    PAD = "<pad>"
    BOS = "<bos>"
    EOS = "<eos>"
    UNK = "<unk>"
    SEP = "<sep>"  # separates question and response inside a dialogue set

    ALL = (PAD, BOS, EOS, UNK, SEP)


class Vocabulary:
    """An immutable-ish token <-> id mapping with special-token handling."""

    def __init__(self, tokens: Sequence[str]) -> None:
        seen: Dict[str, int] = {}
        for token in SpecialTokens.ALL:
            seen[token] = len(seen)
        for token in tokens:
            if token not in seen:
                seen[token] = len(seen)
        self._token_to_id: Dict[str, int] = seen
        self._id_to_token: List[str] = [None] * len(seen)  # type: ignore[list-item]
        for token, token_id in seen.items():
            self._id_to_token[token_id] = token

    # -- construction ---------------------------------------------------- #
    @classmethod
    def build(
        cls,
        token_sequences: Iterable[Sequence[str]],
        max_size: Optional[int] = None,
        min_frequency: int = 1,
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences.

        Tokens are ranked by frequency (ties broken alphabetically for
        determinism) and truncated to ``max_size`` non-special entries.
        """
        counter: Counter[str] = Counter()
        for sequence in token_sequences:
            counter.update(sequence)
        for special in SpecialTokens.ALL:
            counter.pop(special, None)
        ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
        kept = [token for token, count in ranked if count >= min_frequency]
        if max_size is not None:
            budget = max(max_size - len(SpecialTokens.ALL), 0)
            kept = kept[:budget]
        return cls(kept)

    # -- lookups ----------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        """Id of ``token``, falling back to the ``<unk>`` id."""
        return self._token_to_id.get(token, self._token_to_id[SpecialTokens.UNK])

    def id_to_token(self, token_id: int) -> str:
        """Token string for ``token_id`` (raises ``IndexError`` if out of range)."""
        if not 0 <= token_id < len(self._id_to_token):
            raise IndexError(f"token id {token_id} out of range [0, {len(self)})")
        return self._id_to_token[token_id]

    def tokens(self) -> List[str]:
        """All tokens in id order."""
        return list(self._id_to_token)

    # -- special token ids -------------------------------------------------- #
    @property
    def pad_id(self) -> int:
        return self._token_to_id[SpecialTokens.PAD]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[SpecialTokens.BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[SpecialTokens.EOS]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[SpecialTokens.UNK]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SpecialTokens.SEP]

    def special_ids(self) -> List[int]:
        """Ids of all special tokens."""
        return [self._token_to_id[token] for token in SpecialTokens.ALL]

    # -- persistence -------------------------------------------------------- #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the vocabulary to a JSON file (id order preserved)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"tokens": self._id_to_token}, indent=2))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Vocabulary":
        """Load a vocabulary written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        tokens = data["tokens"]
        non_special = [token for token in tokens if token not in SpecialTokens.ALL]
        return cls(non_special)
