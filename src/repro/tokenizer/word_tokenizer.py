"""Word-level tokenizer with encode/decode to fixed-length id sequences."""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tokenizer.vocab import Vocabulary

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+|[.,!?;:]")


def split_words(text: str) -> List[str]:
    """Lower-case regex word splitting (letters/digits plus basic punctuation)."""
    return _TOKEN_PATTERN.findall(text.lower())


class WordTokenizer:
    """Encodes text into integer id sequences against a :class:`Vocabulary`."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    # -- construction ---------------------------------------------------- #
    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        max_vocab_size: Optional[int] = None,
        min_frequency: int = 1,
    ) -> "WordTokenizer":
        """Build the vocabulary from raw texts and return a tokenizer."""
        vocabulary = Vocabulary.build(
            (split_words(text) for text in texts),
            max_size=max_vocab_size,
            min_frequency=min_frequency,
        )
        return cls(vocabulary)

    # -- basic API --------------------------------------------------------- #
    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)

    def tokenize(self, text: str) -> List[str]:
        """Split text into word tokens (no ids)."""
        return split_words(text)

    def encode(
        self,
        text: str,
        add_bos: bool = True,
        add_eos: bool = True,
        max_length: Optional[int] = None,
    ) -> List[int]:
        """Encode ``text`` into a list of token ids."""
        ids = [self.vocabulary.token_to_id(token) for token in split_words(text)]
        if add_bos:
            ids = [self.vocabulary.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocabulary.eos_id]
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def encode_pair(
        self,
        question: str,
        response: str,
        max_length: Optional[int] = None,
    ) -> List[int]:
        """Encode a dialogue set as ``<bos> question <sep> response <eos>``."""
        question_ids = [self.vocabulary.token_to_id(t) for t in split_words(question)]
        response_ids = [self.vocabulary.token_to_id(t) for t in split_words(response)]
        ids = (
            [self.vocabulary.bos_id]
            + question_ids
            + [self.vocabulary.sep_id]
            + response_ids
            + [self.vocabulary.eos_id]
        )
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Convert ids back to a space-joined string."""
        tokens: List[str] = []
        special = set(self.vocabulary.special_ids())
        for token_id in ids:
            token_id = int(token_id)
            if skip_special and token_id in special:
                continue
            tokens.append(self.vocabulary.id_to_token(token_id))
        return " ".join(tokens)

    # -- batching ---------------------------------------------------------- #
    def pad_batch(
        self, sequences: Sequence[Sequence[int]], max_length: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pad variable-length id sequences into ``(ids, attention_mask)`` arrays.

        ``attention_mask`` is boolean with True marking real (non-pad) tokens.
        """
        if not sequences:
            raise ValueError("pad_batch received an empty list of sequences")
        lengths = [len(sequence) for sequence in sequences]
        target = max(lengths) if max_length is None else max_length
        target = max(target, 1)
        batch = np.full((len(sequences), target), self.vocabulary.pad_id, dtype=np.int64)
        mask = np.zeros((len(sequences), target), dtype=bool)
        for row, sequence in enumerate(sequences):
            clipped = list(sequence)[:target]
            batch[row, : len(clipped)] = clipped
            mask[row, : len(clipped)] = True
        return batch, mask

    def encode_batch(
        self,
        texts: Sequence[str],
        max_length: Optional[int] = None,
        add_bos: bool = True,
        add_eos: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode and pad a batch of texts."""
        encoded = [
            self.encode(text, add_bos=add_bos, add_eos=add_eos, max_length=max_length)
            for text in texts
        ]
        return self.pad_batch(encoded, max_length=None)

    def unknown_rate(self, text: str) -> float:
        """Fraction of word tokens in ``text`` that map to ``<unk>``."""
        tokens = split_words(text)
        if not tokens:
            return 0.0
        unknown = sum(
            1 for token in tokens if self.vocabulary.token_to_id(token) == self.vocabulary.unk_id
        )
        return unknown / len(tokens)
