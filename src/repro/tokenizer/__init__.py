"""Word-level tokenizer and vocabulary used by the on-device LLM."""

from repro.tokenizer.vocab import SpecialTokens, Vocabulary
from repro.tokenizer.word_tokenizer import WordTokenizer, split_words

__all__ = ["SpecialTokens", "Vocabulary", "WordTokenizer", "split_words"]
